// Hash table tests (§5): every build/probe combination across LP, DH,
// cuckoo, and bucketized tables must reproduce the reference join semantics
// computed with a std::unordered_multimap, under unique keys, duplicate
// keys, varying load factors and hit rates.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/isa.h"
#include "hash/bucketized.h"
#include "hash/cuckoo.h"
#include "hash/double_hashing.h"
#include "hash/linear_probing.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

struct Tuple3 {
  uint32_t key, spay, rpay;
  bool operator==(const Tuple3&) const = default;
  bool operator<(const Tuple3& o) const {
    return std::tie(key, spay, rpay) < std::tie(o.key, o.spay, o.rpay);
  }
};

// Reference join of probe side (keys, pays) against build side tuples.
std::vector<Tuple3> ReferenceJoin(const std::vector<uint32_t>& b_keys,
                                  const std::vector<uint32_t>& b_pays,
                                  const std::vector<uint32_t>& p_keys,
                                  const std::vector<uint32_t>& p_pays) {
  std::unordered_multimap<uint32_t, uint32_t> map;
  for (size_t i = 0; i < b_keys.size(); ++i) map.emplace(b_keys[i], b_pays[i]);
  std::vector<Tuple3> out;
  for (size_t i = 0; i < p_keys.size(); ++i) {
    auto [lo, hi] = map.equal_range(p_keys[i]);
    for (auto it = lo; it != hi; ++it) {
      out.push_back({p_keys[i], p_pays[i], it->second});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Tuple3> Collect(const AlignedBuffer<uint32_t>& k,
                            const AlignedBuffer<uint32_t>& s,
                            const AlignedBuffer<uint32_t>& r, size_t n) {
  std::vector<Tuple3> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = {k[i], s[i], r[i]};
  std::sort(out.begin(), out.end());
  return out;
}

struct Workload {
  std::vector<uint32_t> b_keys, b_pays, p_keys, p_pays;
  std::vector<Tuple3> expected;
  size_t max_matches;
};

Workload MakeWorkload(size_t n_build, size_t n_probe, bool unique_keys,
                      double hit_rate, uint64_t seed) {
  Workload w;
  w.b_keys.resize(n_build);
  w.b_pays.resize(n_build);
  w.p_keys.resize(n_probe);
  w.p_pays.resize(n_probe);
  if (unique_keys) {
    FillUniqueShuffled(w.b_keys.data(), n_build, seed, 1);
  } else {
    FillWithRepeats(w.b_keys.data(), n_build, std::max<size_t>(n_build / 3, 1),
                    seed, 1);
  }
  FillSequential(w.b_pays.data(), n_build, 10'000);
  FillProbeKeys(w.p_keys.data(), n_probe, w.b_keys.data(), n_build, hit_rate,
                seed + 1);
  FillSequential(w.p_pays.data(), n_probe, 50'000);
  w.expected = ReferenceJoin(w.b_keys, w.b_pays, w.p_keys, w.p_pays);
  w.max_matches = w.expected.size();
  return w;
}

// ---------------------------------------------------------------------------
// Linear probing
// ---------------------------------------------------------------------------

enum class LpBuild { kScalar, kVector, kVectorUnique };
enum class LpProbe { kScalar, kVector, kAvx2, kHorizontal };

// Name helpers used by the INSTANTIATE macros (no braces inside macro args).
const char* LpBuildName(LpBuild b) {
  switch (b) {
    case LpBuild::kScalar: return "bscalar";
    case LpBuild::kVector: return "bvector";
    case LpBuild::kVectorUnique: return "bvecunique";
  }
  return "?";
}
const char* LpProbeName(LpProbe p) {
  switch (p) {
    case LpProbe::kScalar: return "pscalar";
    case LpProbe::kVector: return "pvector";
    case LpProbe::kAvx2: return "pavx2";
    case LpProbe::kHorizontal: return "phoriz";
  }
  return "?";
}



class LinearProbingTest
    : public ::testing::TestWithParam<std::tuple<LpBuild, LpProbe, int>> {};

TEST_P(LinearProbingTest, JoinMatchesReference) {
  auto [build, probe, pct_fill] = GetParam();
  bool need512 = build != LpBuild::kScalar || probe == LpProbe::kVector ||
                 probe == LpProbe::kHorizontal;
  if (need512 && !IsaSupported(Isa::kAvx512)) GTEST_SKIP();
  if (probe == LpProbe::kAvx2 && !IsaSupported(Isa::kAvx2)) GTEST_SKIP();

  const size_t n_build = 3000;
  const size_t n_probe = 10'000;
  const size_t buckets = n_build * 100 / pct_fill + 16;
  const bool unique = build == LpBuild::kVectorUnique;
  Workload w = MakeWorkload(n_build, n_probe, unique, 0.8, 7);

  LinearProbingTable table(buckets);
  switch (build) {
    case LpBuild::kScalar:
      table.BuildScalar(w.b_keys.data(), w.b_pays.data(), n_build);
      break;
    case LpBuild::kVector:
      table.BuildAvx512(w.b_keys.data(), w.b_pays.data(), n_build, false);
      break;
    case LpBuild::kVectorUnique:
      table.BuildAvx512(w.b_keys.data(), w.b_pays.data(), n_build, true);
      break;
  }
  EXPECT_EQ(table.size(), n_build);

  AlignedBuffer<uint32_t> ok(w.max_matches + 16), os(w.max_matches + 16),
      orp(w.max_matches + 16);
  size_t got = 0;
  switch (probe) {
    case LpProbe::kScalar:
      got = table.ProbeScalar(w.p_keys.data(), w.p_pays.data(), n_probe,
                              ok.data(), os.data(), orp.data());
      break;
    case LpProbe::kVector:
      got = table.ProbeAvx512(w.p_keys.data(), w.p_pays.data(), n_probe,
                              ok.data(), os.data(), orp.data());
      break;
    case LpProbe::kAvx2:
      got = table.ProbeAvx2(w.p_keys.data(), w.p_pays.data(), n_probe,
                            ok.data(), os.data(), orp.data());
      break;
    case LpProbe::kHorizontal:
      got = table.ProbeHorizontalAvx512(w.p_keys.data(), w.p_pays.data(),
                                        n_probe, ok.data(), os.data(),
                                        orp.data());
      break;
  }
  ASSERT_EQ(got, w.expected.size());
  EXPECT_EQ(Collect(ok, os, orp, got), w.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinearProbingTest,
    ::testing::Combine(::testing::Values(LpBuild::kScalar, LpBuild::kVector,
                                         LpBuild::kVectorUnique),
                       ::testing::Values(LpProbe::kScalar, LpProbe::kVector,
                                         LpProbe::kAvx2,
                                         LpProbe::kHorizontal),
                       ::testing::Values(25, 50, 80)),
    [](const auto& info) {
      return std::string(LpBuildName(std::get<0>(info.param))) + "_" +
             LpProbeName(std::get<1>(info.param)) + "_fill" +
             std::to_string(std::get<2>(info.param));
    });

TEST(LinearProbing, DuplicateKeysReturnAllMatches) {
  std::vector<uint32_t> bk = {5, 5, 5, 9, 9, 2};
  std::vector<uint32_t> bp = {1, 2, 3, 4, 5, 6};
  std::vector<uint32_t> pk = {5, 9, 2, 7};
  std::vector<uint32_t> pp = {100, 200, 300, 400};
  LinearProbingTable table(64);
  table.BuildScalar(bk.data(), bp.data(), bk.size());
  AlignedBuffer<uint32_t> ok(32), os(32), orp(32);
  size_t got = table.ProbeScalar(pk.data(), pp.data(), pk.size(), ok.data(),
                                 os.data(), orp.data());
  EXPECT_EQ(got, 6u);  // 3 + 2 + 1 + 0
  auto expected = ReferenceJoin(bk, bp, pk, pp);
  EXPECT_EQ(Collect(ok, os, orp, got), expected);
}

TEST(LinearProbing, EmptyTableYieldsNoMatches) {
  LinearProbingTable table(64);
  std::vector<uint32_t> pk = {1, 2, 3};
  std::vector<uint32_t> pp = {0, 0, 0};
  AlignedBuffer<uint32_t> ok(16), os(16), orp(16);
  EXPECT_EQ(table.ProbeScalar(pk.data(), pp.data(), 3, ok.data(), os.data(),
                              orp.data()),
            0u);
}

TEST(LinearProbing, ClearResets) {
  LinearProbingTable table(64);
  std::vector<uint32_t> bk = {1, 2, 3};
  std::vector<uint32_t> bp = {7, 8, 9};
  table.BuildScalar(bk.data(), bp.data(), 3);
  EXPECT_EQ(table.size(), 3u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  AlignedBuffer<uint32_t> ok(16), os(16), orp(16);
  EXPECT_EQ(table.ProbeScalar(bk.data(), bp.data(), 3, ok.data(), os.data(),
                              orp.data()),
            0u);
}

// ---------------------------------------------------------------------------
// Double hashing
// ---------------------------------------------------------------------------

enum class DhBuild { kScalar, kVector };
enum class DhProbe { kScalar, kVector, kAvx2 };

const char* DhBuildName(DhBuild b) {
  return b == DhBuild::kScalar ? "bscalar" : "bvector";
}
const char* DhProbeName(DhProbe p) {
  switch (p) {
    case DhProbe::kScalar: return "pscalar";
    case DhProbe::kVector: return "pvector";
    case DhProbe::kAvx2: return "pavx2";
  }
  return "?";
}


class DoubleHashingTest
    : public ::testing::TestWithParam<std::tuple<DhBuild, DhProbe, bool>> {};

TEST_P(DoubleHashingTest, JoinMatchesReference) {
  auto [build, probe, unique] = GetParam();
  bool need512 = build == DhBuild::kVector || probe == DhProbe::kVector;
  if (need512 && !IsaSupported(Isa::kAvx512)) GTEST_SKIP();
  if (probe == DhProbe::kAvx2 && !IsaSupported(Isa::kAvx2)) GTEST_SKIP();

  const size_t n_build = 3000;
  const size_t n_probe = 10'000;
  Workload w = MakeWorkload(n_build, n_probe, unique, 0.8, 11);

  DoubleHashingTable table(n_build * 2);
  if (build == DhBuild::kScalar) {
    table.BuildScalar(w.b_keys.data(), w.b_pays.data(), n_build);
  } else {
    table.BuildAvx512(w.b_keys.data(), w.b_pays.data(), n_build);
  }

  AlignedBuffer<uint32_t> ok(w.max_matches + 16), os(w.max_matches + 16),
      orp(w.max_matches + 16);
  size_t got = 0;
  switch (probe) {
    case DhProbe::kScalar:
      got = table.ProbeScalar(w.p_keys.data(), w.p_pays.data(), n_probe,
                              ok.data(), os.data(), orp.data());
      break;
    case DhProbe::kVector:
      got = table.ProbeAvx512(w.p_keys.data(), w.p_pays.data(), n_probe,
                              ok.data(), os.data(), orp.data());
      break;
    case DhProbe::kAvx2:
      got = table.ProbeAvx2(w.p_keys.data(), w.p_pays.data(), n_probe,
                            ok.data(), os.data(), orp.data());
      break;
  }
  ASSERT_EQ(got, w.expected.size());
  EXPECT_EQ(Collect(ok, os, orp, got), w.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DoubleHashingTest,
    ::testing::Combine(::testing::Values(DhBuild::kScalar, DhBuild::kVector),
                       ::testing::Values(DhProbe::kScalar, DhProbe::kVector,
                                         DhProbe::kAvx2),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(DhBuildName(std::get<0>(info.param))) + "_" +
             DhProbeName(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_unique" : "_dups");
    });

TEST(DoubleHashing, RoundsBucketsToPowerOfTwo) {
  DoubleHashingTable table(1000);
  EXPECT_EQ(table.num_buckets(), 1024u);
}

TEST(DoubleHashing, StepIsOddAndBounded) {
  DoubleHashingTable table(1 << 12);
  for (uint32_t k = 1; k < 5000; k += 7) {
    uint32_t s = table.StepFor(k);
    EXPECT_EQ(s & 1u, 1u);
    EXPECT_GE(s, 1u);
    EXPECT_LT(s, table.num_buckets());
  }
}

// ---------------------------------------------------------------------------
// Cuckoo hashing
// ---------------------------------------------------------------------------

enum class CkBuild { kScalar, kVector };
enum class CkProbe { kBranching, kBranchless, kVSelect, kVBlend, kAvx2 };

const char* CkBuildName(CkBuild b) {
  return b == CkBuild::kScalar ? "bscalar" : "bvector";
}
const char* CkProbeName(CkProbe p) {
  switch (p) {
    case CkProbe::kBranching: return "pbranch";
    case CkProbe::kBranchless: return "pbranchless";
    case CkProbe::kVSelect: return "pvselect";
    case CkProbe::kVBlend: return "pvblend";
    case CkProbe::kAvx2: return "pavx2";
  }
  return "?";
}


class CuckooTest
    : public ::testing::TestWithParam<std::tuple<CkBuild, CkProbe, int>> {};

TEST_P(CuckooTest, JoinMatchesReference) {
  auto [build, probe, pct_fill] = GetParam();
  bool need512 = build == CkBuild::kVector || probe == CkProbe::kVSelect ||
                 probe == CkProbe::kVBlend;
  if (need512 && !IsaSupported(Isa::kAvx512)) GTEST_SKIP();
  if (probe == CkProbe::kAvx2 && !IsaSupported(Isa::kAvx2)) GTEST_SKIP();

  const size_t n_build = 3000;
  const size_t n_probe = 10'000;
  Workload w = MakeWorkload(n_build, n_probe, /*unique=*/true, 0.8, 13);

  CuckooTable table(n_build * 100 / pct_fill + 32);
  bool built;
  if (build == CkBuild::kScalar) {
    built = table.BuildScalar(w.b_keys.data(), w.b_pays.data(), n_build);
  } else {
    built = table.BuildAvx512(w.b_keys.data(), w.b_pays.data(), n_build);
  }
  ASSERT_TRUE(built);
  EXPECT_EQ(table.size(), n_build);

  AlignedBuffer<uint32_t> ok(w.max_matches + 16), os(w.max_matches + 16),
      orp(w.max_matches + 16);
  size_t got = 0;
  switch (probe) {
    case CkProbe::kBranching:
      got = table.ProbeScalarBranching(w.p_keys.data(), w.p_pays.data(),
                                       n_probe, ok.data(), os.data(),
                                       orp.data());
      break;
    case CkProbe::kBranchless:
      got = table.ProbeScalarBranchless(w.p_keys.data(), w.p_pays.data(),
                                        n_probe, ok.data(), os.data(),
                                        orp.data());
      break;
    case CkProbe::kVSelect:
      got = table.ProbeVerticalSelectAvx512(w.p_keys.data(), w.p_pays.data(),
                                            n_probe, ok.data(), os.data(),
                                            orp.data());
      break;
    case CkProbe::kVBlend:
      got = table.ProbeVerticalBlendAvx512(w.p_keys.data(), w.p_pays.data(),
                                           n_probe, ok.data(), os.data(),
                                           orp.data());
      break;
    case CkProbe::kAvx2:
      got = table.ProbeAvx2(w.p_keys.data(), w.p_pays.data(), n_probe,
                            ok.data(), os.data(), orp.data());
      break;
  }
  ASSERT_EQ(got, w.expected.size());
  EXPECT_EQ(Collect(ok, os, orp, got), w.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CuckooTest,
    ::testing::Combine(::testing::Values(CkBuild::kScalar, CkBuild::kVector),
                       ::testing::Values(CkProbe::kBranching,
                                         CkProbe::kBranchless,
                                         CkProbe::kVSelect, CkProbe::kVBlend,
                                         CkProbe::kAvx2),
                       ::testing::Values(30, 45)),
    [](const auto& info) {
      return std::string(CkBuildName(std::get<0>(info.param))) + "_" +
             CkProbeName(std::get<1>(info.param)) + "_fill" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Cuckoo, EveryKeyInOneOfItsTwoBuckets) {
  const size_t n = 2000;
  std::vector<uint32_t> keys(n), pays(n);
  FillUniqueShuffled(keys.data(), n, 3, 1);
  FillSequential(pays.data(), n, 0);
  CuckooTable table(n * 2 + 32);
  ASSERT_TRUE(table.BuildScalar(keys.data(), pays.data(), n));
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = keys[i];
    bool found = table.bucket_keys()[table.Hash1(k)] == k ||
                 table.bucket_keys()[table.Hash2(k)] == k;
    ASSERT_TRUE(found) << "key " << k;
  }
}

// ---------------------------------------------------------------------------
// Bucketized (horizontal) tables
// ---------------------------------------------------------------------------

class BucketizedTest
    : public ::testing::TestWithParam<std::tuple<BucketScheme, bool>> {};

TEST_P(BucketizedTest, JoinMatchesReference) {
  auto [scheme, horizontal] = GetParam();
  if (horizontal && !IsaSupported(Isa::kAvx512)) GTEST_SKIP();
  const size_t n_build = 3000;
  const size_t n_probe = 10'000;
  Workload w = MakeWorkload(n_build, n_probe, /*unique=*/false, 0.8, 17);
  BucketizedTable table(n_build * 2, scheme);
  table.BuildScalar(w.b_keys.data(), w.b_pays.data(), n_build);
  AlignedBuffer<uint32_t> ok(w.max_matches + 16), os(w.max_matches + 16),
      orp(w.max_matches + 16);
  size_t got =
      horizontal
          ? table.ProbeHorizontalAvx512(w.p_keys.data(), w.p_pays.data(),
                                        n_probe, ok.data(), os.data(),
                                        orp.data())
          : table.ProbeScalar(w.p_keys.data(), w.p_pays.data(), n_probe,
                              ok.data(), os.data(), orp.data());
  ASSERT_EQ(got, w.expected.size());
  EXPECT_EQ(Collect(ok, os, orp, got), w.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BucketizedTest,
    ::testing::Combine(::testing::Values(BucketScheme::kLinear,
                                         BucketScheme::kDouble),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == BucketScheme::kLinear
                             ? "lp"
                             : "dh") +
             (std::get<1>(info.param) ? "_horizontal" : "_scalar");
    });

TEST(BucketizedCuckoo, JoinMatchesReference) {
  const size_t n_build = 3000;
  const size_t n_probe = 10'000;
  Workload w = MakeWorkload(n_build, n_probe, /*unique=*/true, 0.8, 19);
  BucketizedCuckooTable table(n_build * 2);
  ASSERT_TRUE(table.BuildScalar(w.b_keys.data(), w.b_pays.data(), n_build));
  AlignedBuffer<uint32_t> ok(w.max_matches + 16), os(w.max_matches + 16),
      orp(w.max_matches + 16);
  size_t got = table.ProbeScalar(w.p_keys.data(), w.p_pays.data(), n_probe,
                                 ok.data(), os.data(), orp.data());
  ASSERT_EQ(got, w.expected.size());
  EXPECT_EQ(Collect(ok, os, orp, got), w.expected);
  if (IsaSupported(Isa::kAvx512)) {
    size_t got2 = table.ProbeHorizontalAvx512(w.p_keys.data(),
                                              w.p_pays.data(), n_probe,
                                              ok.data(), os.data(),
                                              orp.data());
    ASSERT_EQ(got2, w.expected.size());
    EXPECT_EQ(Collect(ok, os, orp, got2), w.expected);
  }
}

TEST(BucketizedCuckoo, HighLoadFactorStillBuilds) {
  const size_t n = 8000;
  std::vector<uint32_t> keys(n), pays(n);
  FillUniqueShuffled(keys.data(), n, 23, 1);
  FillSequential(pays.data(), n, 0);
  // 80% load factor: feasible for bucketized cuckoo (the paper's point that
  // bucketization supports much higher load factors than plain cuckoo).
  BucketizedCuckooTable table(n * 10 / 8);
  EXPECT_TRUE(table.BuildScalar(keys.data(), pays.data(), n));
}

}  // namespace
}  // namespace simddb
