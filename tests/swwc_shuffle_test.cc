// SWWC shuffle correctness: every fill path (scalar / AVX2 / AVX-512) must
// produce output byte-identical to the buffered-16 reference shuffle — same
// stable order, same partition layout — for any fanout, size, and output
// base alignment, including bases that defeat the buffered-16 `streamable`
// flag (the whole point of the slid grid).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "core/isa.h"
#include "partition/parallel_partition.h"
#include "partition/partition_fn.h"
#include "partition/plan.h"
#include "partition/shuffle.h"
#include "partition/swwc.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb {
namespace {

enum class Fill { kScalar, kAvx2, kAvx512 };

const char* FillName(Fill f) {
  switch (f) {
    case Fill::kScalar: return "scalar";
    case Fill::kAvx2: return "avx2";
    case Fill::kAvx512: return "avx512";
  }
  return "?";
}

bool FillSupported(Fill f) {
  switch (f) {
    case Fill::kScalar: return true;
    case Fill::kAvx2: return IsaSupported(Isa::kAvx2);
    case Fill::kAvx512: return IsaSupported(Isa::kAvx512);
  }
  return false;
}

void RunSwwc(Fill f, const PartitionFn& fn, const uint32_t* keys,
             const uint32_t* pays, size_t n, uint32_t* offsets,
             uint32_t* out_keys, uint32_t* out_pays, SwwcBuffers* bufs) {
  switch (f) {
    case Fill::kScalar:
      ShuffleSwwcScalar(fn, keys, pays, n, offsets, out_keys, out_pays, bufs);
      break;
    case Fill::kAvx2:
      ShuffleSwwcAvx2(fn, keys, pays, n, offsets, out_keys, out_pays, bufs);
      break;
    case Fill::kAvx512:
      ShuffleSwwcAvx512(fn, keys, pays, n, offsets, out_keys, out_pays, bufs);
      break;
  }
}

// Exclusive prefix-sum offsets for one single-threaded shuffle.
std::vector<uint32_t> MakeOffsets(const PartitionFn& fn, const uint32_t* keys,
                                  size_t n) {
  std::vector<uint32_t> offsets(fn.fanout, 0);
  for (size_t i = 0; i < n; ++i) offsets[fn(keys[i])]++;
  uint32_t sum = 0;
  for (uint32_t p = 0; p < fn.fanout; ++p) {
    uint32_t c = offsets[p];
    offsets[p] = sum;
    sum += c;
  }
  return offsets;
}

// (fill, bits, n, key offset elems, payload offset elems). Offset 1 makes
// the output base 4-byte aligned only; unequal key/payload offsets break
// the mod-64 congruence so the payload line takes the non-streaming path.
class SwwcShuffleTest
    : public ::testing::TestWithParam<
          std::tuple<Fill, int, size_t, size_t, size_t>> {};

TEST_P(SwwcShuffleTest, MatchesBuffered16) {
  auto [fill, bits, n, ko, po] = GetParam();
  if (!FillSupported(fill)) GTEST_SKIP();
  PartitionFn fn = PartitionFn::Radix(bits, 32 - bits);

  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
  FillUniform(keys.data(), n, 42, 0, 0xFFFFFFFFu);
  FillSequential(pays.data(), n, 0);

  // Reference: buffered-16 scalar shuffle into 64-byte-aligned arrays.
  std::vector<uint32_t> ref_off = MakeOffsets(fn, keys.data(), n);
  AlignedBuffer<uint32_t> ref_k(ShuffleCapacity(n)), ref_p(ShuffleCapacity(n));
  ShuffleBuffers ref_bufs;
  ShuffleScalarBuffered(fn, keys.data(), pays.data(), n, ref_off.data(),
                        ref_k.data(), ref_p.data(), &ref_bufs);

  // SWWC into deliberately offset bases.
  std::vector<uint32_t> off = MakeOffsets(fn, keys.data(), n);
  AlignedBuffer<uint32_t> raw_k(ShuffleCapacity(n) + 16),
      raw_p(ShuffleCapacity(n) + 16);
  uint32_t* out_k = raw_k.data() + ko;
  uint32_t* out_p = raw_p.data() + po;
  SwwcBuffers bufs;
  RunSwwc(fill, fn, keys.data(), pays.data(), n, off.data(), out_k, out_p,
          &bufs);

  ASSERT_EQ(0, std::memcmp(out_k, ref_k.data(), n * sizeof(uint32_t)));
  ASSERT_EQ(0, std::memcmp(out_p, ref_p.data(), n * sizeof(uint32_t)));
  // Main leaves offsets at the partition ends, like the buffered kernels.
  for (uint32_t p = 0; p < fn.fanout; ++p) ASSERT_EQ(off[p], ref_off[p]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SwwcShuffleTest,
    ::testing::Combine(
        ::testing::Values(Fill::kScalar, Fill::kAvx2, Fill::kAvx512),
        ::testing::Values(1, 6, 12, 13),
        ::testing::Values<size_t>(0, 1, 1000, 100'003),
        ::testing::Values<size_t>(0, 1),
        ::testing::Values<size_t>(0, 5)),
    [](const auto& info) {
      return std::string(FillName(std::get<0>(info.param))) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param)) + "_k" +
             std::to_string(std::get<3>(info.param)) + "_p" +
             std::to_string(std::get<4>(info.param));
    });

TEST(SwwcShuffle, KeyOnlyMatchesBuffered16) {
  const size_t n = 65'539;
  for (int bits : {2, 12}) {
    for (size_t ko : {size_t{0}, size_t{3}}) {
      PartitionFn fn = PartitionFn::Radix(bits, 0);
      AlignedBuffer<uint32_t> keys(n + 16);
      FillUniform(keys.data(), n, 7, 0, 0xFFFFFFFFu);

      std::vector<uint32_t> ref_off = MakeOffsets(fn, keys.data(), n);
      AlignedBuffer<uint32_t> ref_k(ShuffleCapacity(n));
      ShuffleBuffers ref_bufs;
      ShuffleKeysScalarBufferedMain(fn, keys.data(), n, ref_off.data(),
                                    ref_k.data(), &ref_bufs);
      ShuffleKeysBufferedCleanup(fn.fanout, ref_off.data(), ref_bufs,
                                 ref_k.data());

      std::vector<uint32_t> off = MakeOffsets(fn, keys.data(), n);
      AlignedBuffer<uint32_t> raw_k(ShuffleCapacity(n) + 16);
      uint32_t* out_k = raw_k.data() + ko;
      SwwcBuffers bufs;
      ShuffleKeysSwwcScalarMain(fn, keys.data(), n, off.data(), out_k, &bufs);
      ShuffleKeysSwwcCleanup(fn.fanout, off.data(), bufs, out_k);
      ASSERT_EQ(0, std::memcmp(out_k, ref_k.data(), n * sizeof(uint32_t)))
          << "bits=" << bits << " ko=" << ko;
    }
  }
}

// ParallelPartitionPass with the SWWC variant must reproduce the
// buffered-16 output bit-for-bit at any thread count (the variant changes
// the flush mechanics, never the layout).
class SwwcParallelPartitionTest
    : public ::testing::TestWithParam<std::tuple<Isa, int, int, size_t>> {};

TEST_P(SwwcParallelPartitionTest, VariantsAgree) {
  auto [isa, threads, bits, n] = GetParam();
  if (!IsaSupported(isa)) GTEST_SKIP();
  PartitionFn fn = PartitionFn::Radix(bits, 32 - bits);

  AlignedBuffer<uint32_t> keys(ShuffleCapacity(n)), pays(ShuffleCapacity(n));
  FillUniform(keys.data(), n, 17, 0, 0xFFFFFFFFu);
  FillSequential(pays.data(), n, 0);

  AlignedBuffer<uint32_t> b16_k(ShuffleCapacity(n)), b16_p(ShuffleCapacity(n));
  AlignedBuffer<uint32_t> wc_k(ShuffleCapacity(n)), wc_p(ShuffleCapacity(n));
  std::vector<uint32_t> b16_starts(fn.fanout + 1), wc_starts(fn.fanout + 1);
  ParallelPartitionResources res;
  ParallelPartitionPass(fn, keys.data(), pays.data(), n, b16_k.data(),
                        b16_p.data(), isa, threads, &res, b16_starts.data(),
                        ShuffleVariant::kBuffered16, ShuffleCapacity(n));
  ParallelPartitionPass(fn, keys.data(), pays.data(), n, wc_k.data(),
                        wc_p.data(), isa, threads, &res, wc_starts.data(),
                        ShuffleVariant::kSwwc, ShuffleCapacity(n));

  ASSERT_EQ(b16_starts, wc_starts);
  ASSERT_EQ(0, std::memcmp(wc_k.data(), b16_k.data(), n * sizeof(uint32_t)));
  ASSERT_EQ(0, std::memcmp(wc_p.data(), b16_p.data(), n * sizeof(uint32_t)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SwwcParallelPartitionTest,
    ::testing::Combine(::testing::Values(Isa::kScalar, Isa::kAvx2,
                                         Isa::kAvx512),
                       ::testing::Values(1, 8), ::testing::Values(6, 12, 13),
                       ::testing::Values<size_t>(0, 1, 100'003)),
    [](const auto& info) {
      return std::string(IsaName(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_b" +
             std::to_string(std::get<2>(info.param)) + "_n" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace simddb
