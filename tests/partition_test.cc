// Partitioning tests (§7): histograms, range functions, and shuffles.
// Every vector variant must agree with its scalar baseline; stable shuffles
// must preserve within-partition input order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "core/isa.h"
#include "partition/histogram.h"
#include "partition/partition_fn.h"
#include "partition/range.h"
#include "partition/shuffle.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include "util/prefix_sum.h"

namespace simddb {
namespace {

bool Has512() { return IsaSupported(Isa::kAvx512); }

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

enum class HistVariant { kReplicated, kSerialized, kCompressed };

const char* HistVariantName(HistVariant v) {
  switch (v) {
    case HistVariant::kReplicated: return "replicated";
    case HistVariant::kSerialized: return "serialized";
    case HistVariant::kCompressed: return "compressed";
  }
  return "?";
}

class HistogramTest
    : public ::testing::TestWithParam<std::tuple<HistVariant, bool, int>> {};

TEST_P(HistogramTest, MatchesScalar) {
  auto [variant, is_hash, bits] = GetParam();
  if (!Has512()) GTEST_SKIP();
  const size_t n = 100003;
  std::vector<uint32_t> keys(n);
  FillUniform(keys.data(), n, 11, 0, 0xFFFFFFFFu);
  PartitionFn fn = is_hash ? PartitionFn::Hash(1u << bits)
                           : PartitionFn::Radix(bits, 7);
  std::vector<uint32_t> want(fn.fanout), got(fn.fanout);
  HistogramScalar(fn, keys.data(), n, want.data());
  HistogramWorkspace ws;
  switch (variant) {
    case HistVariant::kReplicated:
      HistogramReplicatedAvx512(fn, keys.data(), n, got.data(), &ws);
      break;
    case HistVariant::kSerialized:
      HistogramSerializedAvx512(fn, keys.data(), n, got.data());
      break;
    case HistVariant::kCompressed:
      HistogramCompressedAvx512(fn, keys.data(), n, got.data(), &ws);
      break;
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(std::accumulate(want.begin(), want.end(), uint64_t{0}), n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistogramTest,
    ::testing::Combine(::testing::Values(HistVariant::kReplicated,
                                         HistVariant::kSerialized,
                                         HistVariant::kCompressed),
                       ::testing::Bool(), ::testing::Values(3, 8, 11)),
    [](const auto& info) {
      return std::string(HistVariantName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_hash" : "_radix") + "_bits" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Histogram, SkewedInputOverflowsCompressedCounts) {
  // All keys in one partition: exercises the 8-bit overflow flush path.
  if (!Has512()) GTEST_SKIP();
  const size_t n = 70000;  // >> 255 per count
  std::vector<uint32_t> keys(n, 42);
  PartitionFn fn = PartitionFn::Radix(8, 0);
  std::vector<uint32_t> want(fn.fanout), got(fn.fanout);
  HistogramScalar(fn, keys.data(), n, want.data());
  HistogramWorkspace ws;
  HistogramCompressedAvx512(fn, keys.data(), n, got.data(), &ws);
  EXPECT_EQ(got, want);
  EXPECT_EQ(got[42], n);
}

// ---------------------------------------------------------------------------
// Range functions
// ---------------------------------------------------------------------------

class RangeFnTest : public ::testing::TestWithParam<int> {};

TEST_P(RangeFnTest, AllImplementationsAgree) {
  const uint32_t p = static_cast<uint32_t>(GetParam());
  const size_t n = 40001;
  std::vector<uint32_t> keys(n);
  FillUniform(keys.data(), n, 13, 0, 0xFFFFFFFFu);
  auto splitters = MakeSplitters(p, 0xF0000000u);
  RangeFunction fn(splitters);
  ASSERT_EQ(fn.fanout(), p);

  std::vector<uint32_t> want(n), got(n);
  fn.ScalarBranching(keys.data(), n, want.data());
  for (size_t i = 0; i < n; ++i) ASSERT_LT(want[i], p);

  fn.ScalarBranchless(keys.data(), n, got.data());
  EXPECT_EQ(got, want) << "branchless";
  if (Has512()) {
    fn.VectorAvx512(keys.data(), n, got.data());
    EXPECT_EQ(got, want) << "avx512";
  }
  if (IsaSupported(Isa::kAvx2)) {
    fn.VectorAvx2(keys.data(), n, got.data());
    EXPECT_EQ(got, want) << "avx2";
  }
}

TEST_P(RangeFnTest, RangeIndexAgrees) {
  const uint32_t p = static_cast<uint32_t>(GetParam());
  const size_t n = 20000;
  std::vector<uint32_t> keys(n);
  FillUniform(keys.data(), n, 17, 0, 0xFFFFFFFFu);
  auto splitters = MakeSplitters(p, 0xF0000000u);
  RangeFunction fn(splitters);
  std::vector<uint32_t> want(n), got(n);
  fn.ScalarBranching(keys.data(), n, want.data());
  for (int width : {8, 16}) {
    RangeIndex index(splitters, width);
    index.LookupScalar(keys.data(), n, got.data());
    EXPECT_EQ(got, want) << "scalar tree width " << width;
    if (Has512()) {
      index.LookupAvx512(keys.data(), n, got.data());
      EXPECT_EQ(got, want) << "simd tree width " << width;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RangeFnTest,
                         ::testing::Values(2, 9, 17, 64, 81, 289, 1000,
                                           4096));

TEST(RangeFunction, SplitterBoundariesExact) {
  std::vector<uint32_t> splitters = {10, 20, 30};
  RangeFunction fn(splitters);
  // partition(k) = count of splitters < k: boundary keys belong to the
  // partition whose splitter equals them.
  std::vector<uint32_t> keys = {0, 9, 10, 11, 20, 21, 30, 31, 0xFFFFFFFFu};
  std::vector<uint32_t> out(keys.size());
  fn.ScalarBranching(keys.data(), keys.size(), out.data());
  std::vector<uint32_t> want = {0, 0, 0, 1, 1, 2, 2, 3, 3};
  EXPECT_EQ(out, want);
}

// ---------------------------------------------------------------------------
// Shuffles
// ---------------------------------------------------------------------------

enum class ShufVariant {
  kScalarUnbuffered,
  kScalarBuffered,
  kVectorUnbuffered,
  kVectorBuffered,
  kVectorBufferedUnstable,
};

const char* ShufVariantName(ShufVariant v) {
  switch (v) {
    case ShufVariant::kScalarUnbuffered: return "scalar_unbuf";
    case ShufVariant::kScalarBuffered: return "scalar_buf";
    case ShufVariant::kVectorUnbuffered: return "vector_unbuf";
    case ShufVariant::kVectorBuffered: return "vector_buf";
    case ShufVariant::kVectorBufferedUnstable: return "vector_buf_unstable";
  }
  return "?";
}

bool IsStable(ShufVariant v) {
  return v != ShufVariant::kVectorBufferedUnstable;
}

class ShuffleTest
    : public ::testing::TestWithParam<std::tuple<ShufVariant, bool, int,
                                                 size_t>> {};

TEST_P(ShuffleTest, PartitionsCorrectly) {
  auto [variant, is_hash, bits, n] = GetParam();
  bool needs512 = variant != ShufVariant::kScalarUnbuffered &&
                  variant != ShufVariant::kScalarBuffered;
  if (needs512 && !Has512()) GTEST_SKIP();

  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
  FillUniform(keys.data(), n, 23, 0, 0xFFFFFFFFu);
  FillSequential(pays.data(), n, 0);  // payload = original index
  PartitionFn fn = is_hash ? PartitionFn::Hash(1u << bits)
                           : PartitionFn::Radix(bits, 5);

  std::vector<uint32_t> hist(fn.fanout);
  HistogramScalar(fn, keys.data(), n, hist.data());
  std::vector<uint32_t> offsets(fn.fanout);
  uint32_t sum = 0;
  for (uint32_t p = 0; p < fn.fanout; ++p) {
    offsets[p] = sum;
    sum += hist[p];
  }
  std::vector<uint32_t> starts = offsets;

  AlignedBuffer<uint32_t> out_k(n + 16), out_p(n + 16);
  ShuffleBuffers bufs;
  switch (variant) {
    case ShufVariant::kScalarUnbuffered:
      ShuffleScalarUnbuffered(fn, keys.data(), pays.data(), n, offsets.data(),
                              out_k.data(), out_p.data());
      break;
    case ShufVariant::kScalarBuffered:
      ShuffleScalarBuffered(fn, keys.data(), pays.data(), n, offsets.data(),
                            out_k.data(), out_p.data(), &bufs);
      break;
    case ShufVariant::kVectorUnbuffered:
      ShuffleVectorUnbufferedAvx512(fn, keys.data(), pays.data(), n,
                                    offsets.data(), out_k.data(),
                                    out_p.data());
      break;
    case ShufVariant::kVectorBuffered:
      ShuffleVectorBufferedAvx512(fn, keys.data(), pays.data(), n,
                                  offsets.data(), out_k.data(), out_p.data(),
                                  &bufs);
      break;
    case ShufVariant::kVectorBufferedUnstable:
      ShuffleVectorBufferedUnstableAvx512(fn, keys.data(), pays.data(), n,
                                          offsets.data(), out_k.data(),
                                          out_p.data(), &bufs);
      break;
  }

  // Offsets advanced to ends.
  for (uint32_t p = 0; p < fn.fanout; ++p) {
    ASSERT_EQ(offsets[p], starts[p] + hist[p]) << "partition " << p;
  }
  // Every output tuple is in its partition's range, consistent (key matches
  // its payload's original position), and the output is a permutation.
  std::vector<bool> seen(n, false);
  for (uint32_t p = 0; p < fn.fanout; ++p) {
    uint32_t prev_pos = 0;
    bool first = true;
    for (uint32_t q = starts[p]; q < starts[p] + hist[p]; ++q) {
      uint32_t orig = out_p[q];
      ASSERT_LT(orig, n);
      ASSERT_FALSE(seen[orig]);
      seen[orig] = true;
      ASSERT_EQ(out_k[q], keys[orig]);
      ASSERT_EQ(fn(out_k[q]), p);
      if (IsStable(variant)) {
        if (!first) ASSERT_GT(orig, prev_pos) << "stability violated @" << q;
        prev_pos = orig;
        first = false;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShuffleTest,
    ::testing::Combine(::testing::Values(ShufVariant::kScalarUnbuffered,
                                         ShufVariant::kScalarBuffered,
                                         ShufVariant::kVectorUnbuffered,
                                         ShufVariant::kVectorBuffered,
                                         ShufVariant::kVectorBufferedUnstable),
                       ::testing::Bool(), ::testing::Values(2, 6, 10),
                       ::testing::Values<size_t>(77, 4096, 100003)),
    [](const auto& info) {
      return std::string(ShufVariantName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_hash" : "_radix") + "_bits" +
             std::to_string(std::get<2>(info.param)) + "_n" +
             std::to_string(std::get<3>(info.param));
    });

// ---------------------------------------------------------------------------
// Multi-column destination shuffling
// ---------------------------------------------------------------------------

class DestinationsTest : public ::testing::TestWithParam<bool> {};

TEST_P(DestinationsTest, ReplaysAcrossColumnWidths) {
  bool vectorized = GetParam();
  if (vectorized && !Has512()) GTEST_SKIP();
  const size_t n = 50001;
  AlignedBuffer<uint32_t> keys(n + 16);
  FillUniform(keys.data(), n, 31, 0, 0xFFFFFFFFu);
  PartitionFn fn = PartitionFn::Radix(6, 3);

  std::vector<uint32_t> hist(fn.fanout);
  HistogramScalar(fn, keys.data(), n, hist.data());
  std::vector<uint32_t> offsets(fn.fanout);
  ExclusivePrefixSum(offsets.data(), 0);  // no-op; compute manually below
  uint32_t sum = 0;
  for (uint32_t p = 0; p < fn.fanout; ++p) {
    offsets[p] = sum;
    sum += hist[p];
  }

  AlignedBuffer<uint32_t> dest(n + 16);
  std::vector<uint32_t> offsets_ref = offsets;
  AlignedBuffer<uint32_t> dest_ref(n + 16);
  ComputeDestinationsScalar(fn, keys.data(), n, offsets_ref.data(),
                            dest_ref.data());
  if (vectorized) {
    ComputeDestinationsAvx512(fn, keys.data(), n, offsets.data(),
                              dest.data());
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(dest[i], dest_ref[i]) << i;
  } else {
    std::memcpy(dest.data(), dest_ref.data(), n * sizeof(uint32_t));
  }

  // 8/16/32/64-bit columns all permute consistently.
  AlignedBuffer<uint8_t> c8(n), o8(n);
  AlignedBuffer<uint16_t> c16(n), o16(n);
  AlignedBuffer<uint32_t> c32(n + 16), o32(n + 16);
  AlignedBuffer<uint64_t> c64(n + 16), o64(n + 16);
  for (size_t i = 0; i < n; ++i) {
    c8[i] = static_cast<uint8_t>(i);
    c16[i] = static_cast<uint16_t>(i * 3);
    c32[i] = static_cast<uint32_t>(i * 7);
    c64[i] = static_cast<uint64_t>(i) * 11;
  }
  auto scatter = vectorized ? ScatterColumnAvx512 : ScatterColumnScalar;
  scatter(c8.data(), n, dest.data(), o8.data(), 1);
  scatter(c16.data(), n, dest.data(), o16.data(), 2);
  scatter(c32.data(), n, dest.data(), o32.data(), 4);
  scatter(c64.data(), n, dest.data(), o64.data(), 8);
  for (size_t i = 0; i < n; ++i) {
    uint32_t d = dest[i];
    ASSERT_EQ(o8[d], static_cast<uint8_t>(i));
    ASSERT_EQ(o16[d], static_cast<uint16_t>(i * 3));
    ASSERT_EQ(o32[d], static_cast<uint32_t>(i * 7));
    ASSERT_EQ(o64[d], static_cast<uint64_t>(i) * 11);
  }
}

INSTANTIATE_TEST_SUITE_P(ScalarAndVector, DestinationsTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "vector" : "scalar";
                         });

}  // namespace
}  // namespace simddb
