// Fig. 7: cuckoo-table probe throughput vs. table size — scalar branching,
// scalar branchless [42], horizontal bucketized [30], vertical blend, and
// vertical select (plus the AVX2 vertical probe). 2 hash functions, ~45%
// full, unique keys, ~all probes match.

#include <memory>

#include "bench/bench_common.h"
#include "hash/bucketized.h"
#include "hash/cuckoo.h"

namespace simddb::bench {
namespace {

constexpr size_t kProbes = size_t{1} << 22;

enum Variant {
  kBranching,
  kBranchless,
  kHorizontal,
  kVerticalBlend,
  kVerticalSelect,
  kVerticalAvx2,
};

struct Setup {
  AlignedBuffer<uint32_t> b_keys, b_pays, p_keys, p_pays;
  std::unique_ptr<CuckooTable> table;
  std::unique_ptr<BucketizedCuckooTable> bucketized;

  explicit Setup(size_t table_bytes) {
    size_t buckets = table_bytes / 8;
    size_t n_build = buckets * 45 / 100;
    b_keys.Reset(n_build + 16);
    b_pays.Reset(n_build + 16);
    FillUniqueShuffled(b_keys.data(), n_build, 1);
    FillSequential(b_pays.data(), n_build, 0);
    p_keys.Reset(kProbes + 16);
    p_pays.Reset(kProbes + 16);
    FillProbeKeys(p_keys.data(), kProbes, b_keys.data(), n_build, 1.0, 2);
    FillSequential(p_pays.data(), kProbes, 0);
    table = std::make_unique<CuckooTable>(buckets);
    table->BuildScalar(b_keys.data(), b_pays.data(), n_build);
    bucketized = std::make_unique<BucketizedCuckooTable>(buckets);
    bucketized->BuildScalar(b_keys.data(), b_pays.data(), n_build);
  }

  static Setup& Get(size_t table_bytes) {
    static auto* cache = new std::map<size_t, std::unique_ptr<Setup>>();
    auto it = cache->find(table_bytes);
    if (it == cache->end()) {
      it = cache->emplace(table_bytes, std::make_unique<Setup>(table_bytes))
               .first;
    }
    return *it->second;
  }
};

void BM_ProbeCuckoo(benchmark::State& state) {
  const auto variant = static_cast<Variant>(state.range(0));
  const size_t table_bytes = static_cast<size_t>(state.range(1)) * 1024;
  bool needs512 = variant == kHorizontal || variant == kVerticalBlend ||
                  variant == kVerticalSelect;
  if (needs512 && !RequireIsa(state, Isa::kAvx512)) return;
  if (variant == kVerticalAvx2 && !RequireIsa(state, Isa::kAvx2)) return;
  Setup& s = Setup::Get(table_bytes);
  AlignedBuffer<uint32_t> ok(kProbes + 16), os(kProbes + 16),
      orp(kProbes + 16);
  size_t matches = 0;
  for (auto _ : state) {
    switch (variant) {
      case kBranching:
        matches = s.table->ProbeScalarBranching(s.p_keys.data(),
                                                s.p_pays.data(), kProbes,
                                                ok.data(), os.data(),
                                                orp.data());
        break;
      case kBranchless:
        matches = s.table->ProbeScalarBranchless(s.p_keys.data(),
                                                 s.p_pays.data(), kProbes,
                                                 ok.data(), os.data(),
                                                 orp.data());
        break;
      case kHorizontal:
        matches = s.bucketized->ProbeHorizontalAvx512(
            s.p_keys.data(), s.p_pays.data(), kProbes, ok.data(), os.data(),
            orp.data());
        break;
      case kVerticalBlend:
        matches = s.table->ProbeVerticalBlendAvx512(
            s.p_keys.data(), s.p_pays.data(), kProbes, ok.data(), os.data(),
            orp.data());
        break;
      case kVerticalSelect:
        matches = s.table->ProbeVerticalSelectAvx512(
            s.p_keys.data(), s.p_pays.data(), kProbes, ok.data(), os.data(),
            orp.data());
        break;
      case kVerticalAvx2:
        matches = s.table->ProbeAvx2(s.p_keys.data(), s.p_pays.data(),
                                     kProbes, ok.data(), os.data(),
                                     orp.data());
        break;
    }
    benchmark::DoNotOptimize(matches);
  }
  SetTuplesPerSecond(state, static_cast<double>(kProbes));
  static const char* kNames[] = {"scalar_branching", "scalar_branchless",
                                 "horizontal",       "vertical_blend",
                                 "vertical_select",  "vertical_avx2"};
  state.SetLabel(kNames[variant]);
}

BENCHMARK(BM_ProbeCuckoo)
    ->ArgsProduct({{kBranching, kBranchless, kHorizontal, kVerticalBlend,
                    kVerticalSelect, kVerticalAvx2},
                   {4, 16, 64, 256, 1024, 4096, 16384, 65536}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
