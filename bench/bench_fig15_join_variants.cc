// Fig. 15: the three hash join variants (no / min / max partition), scalar
// vs. vector, with the per-phase breakdown (partition / build / probe) that
// the paper's stacked bars show, reported as counters in milliseconds.

#include "bench/bench_common.h"
#include "join/hash_join.h"
#include "join/sort_merge_join.h"

namespace simddb::bench {
namespace {

constexpr size_t kR = size_t{1} << 22;
constexpr size_t kS = size_t{1} << 22;

enum Variant { kNoPartition, kMinPartition, kMaxPartition, kSortMerge };

struct Workload {
  AlignedBuffer<uint32_t> r_keys, r_pays, s_keys, s_pays;
  Workload() {
    r_keys.Reset(kR + 16);
    r_pays.Reset(kR + 16);
    s_keys.Reset(kS + 16);
    s_pays.Reset(kS + 16);
    FillUniqueShuffled(r_keys.data(), kR, 1);
    FillSequential(r_pays.data(), kR, 0);
    FillProbeKeys(s_keys.data(), kS, r_keys.data(), kR, 1.0, 2);
    FillSequential(s_pays.data(), kS, 0);
  }
  static Workload& Get() {
    static Workload* w = new Workload();
    return *w;
  }
};

void BM_JoinVariant(benchmark::State& state) {
  const auto variant = static_cast<Variant>(state.range(0));
  const bool vec = state.range(1) != 0;
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  Workload& w = Workload::Get();
  JoinRelation r{w.r_keys.data(), w.r_pays.data(), kR};
  JoinRelation s{w.s_keys.data(), w.s_pays.data(), kS};
  JoinConfig cfg;
  cfg.isa = vec ? Isa::kAvx512 : Isa::kScalar;
  // Min-partition's point is thread-private tables; give it a few parts
  // even on one core so the partitioned probe path is exercised.
  cfg.threads = variant == kNoPartition ? 1 : 4;
  AlignedBuffer<uint32_t> ok(kS + 16), orp(kS + 16), osp(kS + 16);
  JoinTimings sum;
  size_t matches = 0;
  int iters = 0;
  for (auto _ : state) {
    JoinTimings t;
    switch (variant) {
      case kNoPartition:
        matches = HashJoinNoPartition(r, s, cfg, ok.data(), orp.data(),
                                      osp.data(), &t);
        break;
      case kMinPartition:
        matches = HashJoinMinPartition(r, s, cfg, ok.data(), orp.data(),
                                       osp.data(), &t);
        break;
      case kMaxPartition:
        matches = HashJoinMaxPartition(r, s, cfg, ok.data(), orp.data(),
                                       osp.data(), &t);
        break;
      case kSortMerge:
        // §10.5.1's comparison point: "hash join is faster than sort-merge
        // join, since we sort ... alone".
        matches = SortMergeJoin(r, s, cfg, ok.data(), orp.data(), osp.data(),
                                &t);
        break;
    }
    benchmark::DoNotOptimize(matches);
    sum.partition_s += t.partition_s;
    sum.build_s += t.build_s;
    sum.probe_s += t.probe_s;
    ++iters;
  }
  SetTuplesPerSecond(state, static_cast<double>(kR + kS));
  state.counters["partition_ms"] = 1e3 * sum.partition_s / iters;
  state.counters["build_ms"] = 1e3 * sum.build_s / iters;
  state.counters["probe_ms"] = 1e3 * sum.probe_s / iters;
  state.counters["matches"] = static_cast<double>(matches);
  static const char* kNames[] = {"no_partition", "min_partition",
                                 "max_partition", "sort_merge"};
  state.SetLabel(std::string(kNames[variant]) +
                 (vec ? "_vector" : "_scalar"));
}

BENCHMARK(BM_JoinVariant)
    ->ArgsProduct({{kNoPartition, kMinPartition, kMaxPartition, kSortMerge},
                   {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
