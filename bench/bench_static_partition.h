#ifndef SIMDDB_BENCH_BENCH_STATIC_PARTITION_H_
#define SIMDDB_BENCH_BENCH_STATIC_PARTITION_H_

// Spawn-per-call, statically-chunked parallel partition pass — the execution
// model the TaskPool scheduler replaced, kept here as the benchmark baseline.
// Each invocation spawns a fresh ThreadTeam, splits the morsel grid into
// contiguous per-thread chunks (no stealing), and synchronizes the
// histogram → prefix-sum → shuffle → cleanup phases with a blocking barrier.
// Identical morsel grid and kernels as ParallelPartitionPass, so measured
// differences are purely scheduling (spawn latency, load balance).

#include "partition/parallel_partition.h"
#include "util/prefix_sum.h"
#include "util/task_pool.h"
#include "util/thread_team.h"

namespace simddb::bench {

inline void StaticChunkPartitionPass(const PartitionFn& fn,
                                     const uint32_t* keys,
                                     const uint32_t* pays, size_t n,
                                     uint32_t* out_keys, uint32_t* out_pays,
                                     Isa isa, int threads,
                                     ParallelPartitionResources* res) {
  const int t_count = threads < 1 ? 1 : threads;
  const uint32_t p_count = fn.fanout;
  const bool vec = isa == Isa::kAvx512 && IsaSupported(Isa::kAvx512);
  const MorselGrid grid(n, BoundedMorselSize(n));
  const size_t m_count = grid.count();
  if (m_count == 0) return;
  res->Reserve(m_count, t_count, p_count);
  uint32_t* hists = res->hists.data();
  Barrier barrier(t_count);
  ThreadTeam::Run(t_count, [&](int t) {
    const size_t m0 = ThreadTeam::ChunkBegin(m_count, t_count, t);
    const size_t m1 = ThreadTeam::ChunkBegin(m_count, t_count, t + 1);
    for (size_t m = m0; m < m1; ++m) {
      uint32_t* h = hists + m * p_count;
      if (vec) {
        HistogramReplicatedAvx512(fn, keys + grid.begin(m), grid.size(m), h,
                                  &res->hist_ws[t]);
      } else {
        HistogramScalar(fn, keys + grid.begin(m), grid.size(m), h);
      }
    }
    barrier.Wait();
    if (t == 0) InterleavedPrefixSum(hists, m_count, p_count);
    barrier.Wait();
    for (size_t m = m0; m < m1; ++m) {
      uint32_t* offsets = hists + m * p_count;
      const size_t b = grid.begin(m);
      if (vec) {
        ShuffleVectorBufferedMainAvx512(fn, keys + b, pays + b, grid.size(m),
                                        offsets, out_keys, out_pays,
                                        &res->bufs[m]);
      } else {
        ShuffleScalarBufferedMain(fn, keys + b, pays + b, grid.size(m),
                                  offsets, out_keys, out_pays, &res->bufs[m]);
      }
    }
    barrier.Wait();
    for (size_t m = m0; m < m1; ++m) {
      ShuffleBufferedCleanup(p_count, hists + m * p_count, res->bufs[m],
                             out_keys, out_pays);
    }
  });
}

}  // namespace simddb::bench

#endif  // SIMDDB_BENCH_BENCH_STATIC_PARTITION_H_
