// Table 1: experimental platform description. The paper tabulates the Xeon
// Phi 7120P, one Haswell CPU and four Sandy Bridge CPUs; this binary prints
// the corresponding rows for the reproduction host (see DESIGN.md for the
// hardware substitution rationale).

#include <cstdio>

#include "core/isa.h"
#include "util/cpu_info.h"

int main() {
  const simddb::CpuInfo& info = simddb::GetCpuInfo();
  std::printf("Table 1 — reproduction platform\n");
  std::printf("  %-24s %s\n", "Model", info.model_name.c_str());
  std::printf("  %-24s %d\n", "Logical cores", info.logical_cores);
  std::printf("  %-24s %zu KB\n", "L1d / core", info.l1d_bytes / 1024);
  std::printf("  %-24s %zu KB\n", "L2 / core", info.l2_bytes / 1024);
  std::printf("  %-24s %zu KB\n", "L3 (total)", info.l3_bytes / 1024);
  std::printf("  %-24s %s\n", "SIMD width",
              info.HasAvx512() ? "512-bit" : (info.avx2 ? "256-bit" : "none"));
  std::printf("  %-24s %s & %s\n", "Gather & Scatter",
              (info.avx2 || info.avx512f) ? "Yes" : "No",
              info.avx512f ? "Yes" : "No");
  std::printf("  %-24s %s\n", "Selective load/store",
              info.avx512f ? "Yes (compress/expand)"
                           : "Emulated (permutation tables)");
  std::printf("  %-24s %s\n", "Conflict detection (CD)",
              info.avx512cd ? "Yes (vpconflictd)" : "No");
  std::printf("  %-24s scalar=%d avx2=%d avx512=%d (best: %s)\n",
              "simddb backends", 1, simddb::IsaSupported(simddb::Isa::kAvx2),
              simddb::IsaSupported(simddb::Isa::kAvx512),
              simddb::IsaName(simddb::BestIsa()));
  return 0;
}
