// Fig. 16: thread scalability of radixsort and the max-partition hash join,
// scalar vs. vector. NOTE (hardware substitution, see DESIGN.md): the paper
// sweeps 1..244 hardware threads on a 61-core Xeon Phi; this host exposes a
// single physical core, so thread counts beyond the hardware concurrency
// exercise the parallel code paths (interleaved prefix sums, barriers,
// cleanup protocol) under oversubscription rather than demonstrating
// wall-clock scaling.

#include <cstring>

#include "bench/bench_common.h"
#include "join/hash_join.h"
#include "sort/radix_sort.h"

namespace simddb::bench {
namespace {

constexpr size_t kSortTuples = size_t{1} << 22;
constexpr size_t kJoinTuples = size_t{1} << 21;

void BM_SortScalability(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  const auto& cols = KeyPayColumns::Get(kSortTuples, 0, 0xFFFFFFFFu, 1);
  AlignedBuffer<uint32_t> keys(kSortTuples + 16), pays(kSortTuples + 16);
  AlignedBuffer<uint32_t> sk(kSortTuples + 16), sp(kSortTuples + 16);
  RadixSortConfig cfg;
  cfg.isa = vec ? Isa::kAvx512 : Isa::kScalar;
  cfg.threads = threads;
  for (auto _ : state) {
    state.PauseTiming();
    std::memcpy(keys.data(), cols.keys.data(),
                kSortTuples * sizeof(uint32_t));
    std::memcpy(pays.data(), cols.pays.data(),
                kSortTuples * sizeof(uint32_t));
    state.ResumeTiming();
    RadixSortPairs(keys.data(), pays.data(), sk.data(), sp.data(),
                   kSortTuples, cfg);
    benchmark::DoNotOptimize(keys.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kSortTuples));
  state.SetLabel(std::string("radixsort_") + (vec ? "vector" : "scalar") +
                 "_t" + std::to_string(threads));
}

void BM_JoinScalability(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  static AlignedBuffer<uint32_t>* r_keys = nullptr;
  static AlignedBuffer<uint32_t>* r_pays = nullptr;
  static AlignedBuffer<uint32_t>* s_keys = nullptr;
  static AlignedBuffer<uint32_t>* s_pays = nullptr;
  if (r_keys == nullptr) {
    r_keys = new AlignedBuffer<uint32_t>(kJoinTuples + 16);
    r_pays = new AlignedBuffer<uint32_t>(kJoinTuples + 16);
    s_keys = new AlignedBuffer<uint32_t>(kJoinTuples + 16);
    s_pays = new AlignedBuffer<uint32_t>(kJoinTuples + 16);
    FillUniqueShuffled(r_keys->data(), kJoinTuples, 1);
    FillSequential(r_pays->data(), kJoinTuples, 0);
    FillProbeKeys(s_keys->data(), kJoinTuples, r_keys->data(), kJoinTuples,
                  1.0, 2);
    FillSequential(s_pays->data(), kJoinTuples, 0);
  }
  JoinRelation r{r_keys->data(), r_pays->data(), kJoinTuples};
  JoinRelation s{s_keys->data(), s_pays->data(), kJoinTuples};
  JoinConfig cfg;
  cfg.isa = vec ? Isa::kAvx512 : Isa::kScalar;
  cfg.threads = threads;
  AlignedBuffer<uint32_t> ok(kJoinTuples + 16), orp(kJoinTuples + 16),
      osp(kJoinTuples + 16);
  size_t matches = 0;
  for (auto _ : state) {
    matches = HashJoinMaxPartition(r, s, cfg, ok.data(), orp.data(),
                                   osp.data());
    benchmark::DoNotOptimize(matches);
  }
  SetTuplesPerSecond(state, static_cast<double>(2 * kJoinTuples));
  state.SetLabel(std::string("hashjoin_") + (vec ? "vector" : "scalar") +
                 "_t" + std::to_string(threads));
}

BENCHMARK(BM_SortScalability)
    ->ArgsProduct({{0, 1}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinScalability)
    ->ArgsProduct({{0, 1}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
