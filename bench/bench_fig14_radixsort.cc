// Fig. 14: LSB radixsort time vs. input size, scalar vs. fully vectorized,
// for key-only and key+payload 32-bit inputs. Reported counter is million
// tuples per second (the paper reports seconds at 1..8 x 10^8 tuples; sizes
// are scaled to this host, shapes preserved).

#include <cstring>

#include "bench/bench_common.h"
#include "sort/radix_sort.h"

namespace simddb::bench {
namespace {

void BM_RadixSort(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  const bool with_payload = state.range(1) != 0;
  const size_t n = static_cast<size_t>(state.range(2)) << 20;
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  const auto& cols = KeyPayColumns::Get(n, 0, 0xFFFFFFFFu, 1);
  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
  AlignedBuffer<uint32_t> sk(n + 16), sp(n + 16);
  RadixSortConfig cfg;
  cfg.isa = vec ? Isa::kAvx512 : Isa::kScalar;
  for (auto _ : state) {
    state.PauseTiming();
    std::memcpy(keys.data(), cols.keys.data(), n * sizeof(uint32_t));
    if (with_payload) {
      std::memcpy(pays.data(), cols.pays.data(), n * sizeof(uint32_t));
    }
    state.ResumeTiming();
    if (with_payload) {
      RadixSortPairs(keys.data(), pays.data(), sk.data(), sp.data(), n, cfg);
    } else {
      RadixSortKeys(keys.data(), sk.data(), n, cfg);
    }
    benchmark::DoNotOptimize(keys.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(n));
  state.SetLabel(std::string(vec ? "vector" : "scalar") +
                 (with_payload ? "_key_payload" : "_key_only"));
}

BENCHMARK(BM_RadixSort)
    ->ArgsProduct({{0, 1}, {0, 1}, {4, 8, 16, 32}})  // size in Mi tuples
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
