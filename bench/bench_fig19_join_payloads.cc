// Fig. 19: max-partition hash join (10^7-scale R vs 10^8-scale S, scaled to
// this host) carrying a varying number of 64-bit payload columns per side
// (R:S column ratios 4:1 .. 1:4). The join itself runs on 32-bit keys and
// row ids; the wide columns are materialized afterwards by rid-gathers
// (§10.5.3 late materialization).

#include <vector>

#include "bench/bench_common.h"
#include "join/hash_join.h"
#include "partition/shuffle.h"

namespace simddb::bench {
namespace {

constexpr size_t kR = size_t{1} << 19;
constexpr size_t kS = size_t{1} << 22;

struct Workload {
  AlignedBuffer<uint32_t> r_keys, r_rids, s_keys, s_rids;
  AlignedBuffer<uint64_t> r_col, s_col;  // shared source columns
  Workload() {
    r_keys.Reset(kR + 16);
    r_rids.Reset(kR + 16);
    s_keys.Reset(kS + 16);
    s_rids.Reset(kS + 16);
    r_col.Reset(kR + 16);
    s_col.Reset(kS + 16);
    FillUniqueShuffled(r_keys.data(), kR, 1);
    FillSequential(r_rids.data(), kR, 0);
    FillProbeKeys(s_keys.data(), kS, r_keys.data(), kR, 1.0, 2);
    FillSequential(s_rids.data(), kS, 0);
    for (size_t i = 0; i < kR; ++i) r_col[i] = i * 3;
    for (size_t i = 0; i < kS; ++i) s_col[i] = i * 5;
  }
  static Workload& Get() {
    static Workload* w = new Workload();
    return *w;
  }
};

void BM_JoinPayloads(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  const int r_cols = static_cast<int>(state.range(1));
  const int s_cols = static_cast<int>(state.range(2));
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  Workload& w = Workload::Get();
  JoinRelation r{w.r_keys.data(), w.r_rids.data(), kR};
  JoinRelation s{w.s_keys.data(), w.s_rids.data(), kS};
  JoinConfig cfg;
  cfg.isa = vec ? Isa::kAvx512 : Isa::kScalar;
  AlignedBuffer<uint32_t> ok(kS + 16), orid(kS + 16), osid(kS + 16);
  AlignedBuffer<uint64_t> mat(kS + 16);
  size_t matches = 0;
  for (auto _ : state) {
    matches = HashJoinMaxPartition(r, s, cfg, ok.data(), orid.data(),
                                   osid.data(), nullptr);
    // Late materialization: dereference each requested wide column by rid.
    for (int c = 0; c < r_cols; ++c) {
      if (vec) {
        GatherColumnAvx512(w.r_col.data(), matches, orid.data(), mat.data(),
                           8);
      } else {
        GatherColumnScalar(w.r_col.data(), matches, orid.data(), mat.data(),
                           8);
      }
      benchmark::DoNotOptimize(mat.data());
    }
    for (int c = 0; c < s_cols; ++c) {
      if (vec) {
        GatherColumnAvx512(w.s_col.data(), matches, osid.data(), mat.data(),
                           8);
      } else {
        GatherColumnScalar(w.s_col.data(), matches, osid.data(), mat.data(),
                           8);
      }
      benchmark::DoNotOptimize(mat.data());
    }
  }
  SetTuplesPerSecond(state, static_cast<double>(kR + kS));
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel(std::string(vec ? "vector" : "scalar") + "_R" +
                 std::to_string(r_cols) + ":S" + std::to_string(s_cols));
}

// R:S 64-bit payload column ratios 4:1, 3:1, 2:1, 1:1, 1:2, 1:3, 1:4.
BENCHMARK(BM_JoinPayloads)
    ->ArgsProduct({{0, 1}, {4}, {1}})
    ->ArgsProduct({{0, 1}, {3}, {1}})
    ->ArgsProduct({{0, 1}, {2}, {1}})
    ->ArgsProduct({{0, 1}, {1}, {1}})
    ->ArgsProduct({{0, 1}, {1}, {2}})
    ->ArgsProduct({{0, 1}, {1}, {3}})
    ->ArgsProduct({{0, 1}, {1}, {4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
