// Fig. 18: radixsort of a 32-bit key with a varying set of payload columns
// (none; 1..4 columns of 8/16/32/64-bit width), shuffled one column at a
// time per pass via the destination-replay scheme of §7.4.

#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "sort/radix_sort.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 22;

// Payload layouts swept: arg = (n_columns << 4) | log2(bytes); n_columns=0
// encodes key-only.
void BM_SortPayloads(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  const int n_cols = static_cast<int>(state.range(1));
  const int elem_bytes = static_cast<int>(state.range(2));
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  const auto& cols_src = KeyPayColumns::Get(kTuples, 0, 0xFFFFFFFFu, 1);
  AlignedBuffer<uint32_t> keys(kTuples + 16), sk(kTuples + 16);
  std::vector<AlignedBuffer<uint8_t>> payload(n_cols), scratch(n_cols);
  std::vector<SortColumn> cols(n_cols);
  for (int c = 0; c < n_cols; ++c) {
    payload[c].Reset((kTuples + 64) * elem_bytes);
    scratch[c].Reset((kTuples + 64) * elem_bytes);
    FillUniform(reinterpret_cast<uint32_t*>(payload[c].data()),
                kTuples * elem_bytes / 4, 7 + c, 0, 0xFFFFFFFFu);
    cols[c] = {payload[c].data(), scratch[c].data(), elem_bytes};
  }
  RadixSortConfig cfg;
  cfg.isa = vec ? Isa::kAvx512 : Isa::kScalar;
  for (auto _ : state) {
    state.PauseTiming();
    std::memcpy(keys.data(), cols_src.keys.data(),
                kTuples * sizeof(uint32_t));
    state.ResumeTiming();
    if (n_cols == 0) {
      RadixSortKeys(keys.data(), sk.data(), kTuples, cfg);
    } else {
      RadixSortMultiColumn(keys.data(), sk.data(), kTuples, cols.data(),
                           n_cols, cfg);
    }
    benchmark::DoNotOptimize(keys.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  state.SetLabel(std::string(vec ? "vector" : "scalar") + "_" +
                 std::to_string(n_cols) + "x" + std::to_string(elem_bytes) +
                 "B");
}

BENCHMARK(BM_SortPayloads)
    ->ArgsProduct({{0, 1}, {0}, {4}})  // key only
    ->ArgsProduct({{0, 1}, {1}, {1, 2, 4, 8}})  // one column per width
    ->ArgsProduct({{0, 1}, {2, 3, 4}, {8}})  // widening tuples: n x 64-bit
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
