#ifndef SIMDDB_BENCH_BENCH_COMMON_H_
#define SIMDDB_BENCH_BENCH_COMMON_H_

// Shared helpers for the per-figure benchmark binaries. Each binary
// regenerates one table or figure of the paper's §10; rows/series are
// encoded as google-benchmark cases with throughput counters in billion
// tuples per second ("Gtps"), the unit the paper's figures use.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>

#include "core/isa.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb::bench {

/// Sets the standard throughput counter (billion tuples per second).
inline void SetTuplesPerSecond(benchmark::State& state, double tuples_per_iter) {
  state.counters["Gtps"] = benchmark::Counter(
      tuples_per_iter * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
}

/// A lazily-built, cached uniform (key, payload) column pair, shared across
/// benchmark cases of one binary so data generation isn't repeated.
struct KeyPayColumns {
  AlignedBuffer<uint32_t> keys;
  AlignedBuffer<uint32_t> pays;

  static const KeyPayColumns& Get(size_t n, uint32_t key_min,
                                  uint32_t key_max, uint64_t seed) {
    static std::map<std::tuple<size_t, uint32_t, uint32_t, uint64_t>,
                    std::unique_ptr<KeyPayColumns>>* cache =
        new std::map<std::tuple<size_t, uint32_t, uint32_t, uint64_t>,
                     std::unique_ptr<KeyPayColumns>>();
    auto key = std::make_tuple(n, key_min, key_max, seed);
    auto it = cache->find(key);
    if (it == cache->end()) {
      auto cols = std::make_unique<KeyPayColumns>();
      cols->keys.Reset(n + 16);
      cols->pays.Reset(n + 16);
      FillUniform(cols->keys.data(), n, seed, key_min, key_max);
      FillSequential(cols->pays.data(), n, 0);
      it = cache->emplace(key, std::move(cols)).first;
    }
    return *it->second;
  }
};

/// Skips the benchmark case when the required ISA is unavailable.
inline bool RequireIsa(benchmark::State& state, Isa isa) {
  if (!IsaSupported(isa)) {
    state.SkipWithError("ISA not supported on this host");
    return false;
  }
  return true;
}

}  // namespace simddb::bench

#endif  // SIMDDB_BENCH_BENCH_COMMON_H_
