#ifndef SIMDDB_BENCH_BENCH_COMMON_H_
#define SIMDDB_BENCH_BENCH_COMMON_H_

// Shared helpers for the per-figure benchmark binaries. Each binary
// regenerates one table or figure of the paper's §10; rows/series are
// encoded as google-benchmark cases with throughput counters in billion
// tuples per second ("Gtps"), the unit the paper's figures use.
//
// Every binary uses SIMDDB_BENCH_MAIN() instead of BENCHMARK_MAIN(), which
// adds a `--json <path>` flag: besides the normal console output, each
// completed case appends one JSON object per line (JSONL) with the case
// name, its label-encoded k=v fields (variant/isa/threads/...), and the
// throughput in tuples per second, so results can be collected and diffed
// by scripts without scraping console tables.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/isa.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb::bench {

/// Sets the standard throughput counter (billion tuples per second).
inline void SetTuplesPerSecond(benchmark::State& state, double tuples_per_iter) {
  state.counters["Gtps"] = benchmark::Counter(
      tuples_per_iter * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
}

/// A lazily-built, cached uniform (key, payload) column pair, shared across
/// benchmark cases of one binary so data generation isn't repeated.
struct KeyPayColumns {
  AlignedBuffer<uint32_t> keys;
  AlignedBuffer<uint32_t> pays;

  static const KeyPayColumns& Get(size_t n, uint32_t key_min,
                                  uint32_t key_max, uint64_t seed) {
    static std::map<std::tuple<size_t, uint32_t, uint32_t, uint64_t>,
                    std::unique_ptr<KeyPayColumns>>* cache =
        new std::map<std::tuple<size_t, uint32_t, uint32_t, uint64_t>,
                     std::unique_ptr<KeyPayColumns>>();
    auto key = std::make_tuple(n, key_min, key_max, seed);
    auto it = cache->find(key);
    if (it == cache->end()) {
      auto cols = std::make_unique<KeyPayColumns>();
      cols->keys.Reset(n + 16);
      cols->pays.Reset(n + 16);
      FillUniform(cols->keys.data(), n, seed, key_min, key_max);
      FillSequential(cols->pays.data(), n, 0);
      it = cache->emplace(key, std::move(cols)).first;
    }
    return *it->second;
  }
};

/// Skips the benchmark case when the required ISA is unavailable.
inline bool RequireIsa(benchmark::State& state, Isa isa) {
  if (!IsaSupported(isa)) {
    state.SkipWithError("ISA not supported on this host");
    return false;
  }
  return true;
}

/// Console reporter that additionally appends one JSON object per finished
/// case to a JSONL stream. Label tokens of the form `key=value` become JSON
/// fields; a bare label token becomes the "variant" field; an "isa" field is
/// inferred from the variant/label when not explicitly encoded.
class JsonLinesReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLinesReporter(std::ostream* json_out) : json_(json_out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      WriteRun(run);
    }
  }

 private:
  static void AppendEscaped(std::string* out, const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out->push_back('\\');
        out->push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out->append(buf);
      } else {
        out->push_back(c);
      }
    }
  }

  static void AppendField(std::string* out, const char* key,
                          const std::string& value, bool quote) {
    out->append(",\"");
    out->append(key);
    out->append("\":");
    if (quote) out->push_back('"');
    AppendEscaped(out, value);
    if (quote) out->push_back('"');
  }

  static bool LooksNumeric(const std::string& s) {
    if (s.empty()) return false;
    size_t i = (s[0] == '-') ? 1 : 0;
    if (i == s.size()) return false;
    bool dot = false;
    for (; i < s.size(); ++i) {
      if (s[i] == '.' && !dot) {
        dot = true;
      } else if (s[i] < '0' || s[i] > '9') {
        return false;
      }
    }
    return true;
  }

  void WriteRun(const Run& run) {
    const std::string name = run.benchmark_name();
    std::string line = "{\"name\":\"";
    AppendEscaped(&line, name);
    line.push_back('"');

    // Split the label on spaces: `key=value` tokens become fields, the
    // first bare token becomes "variant".
    std::string variant;
    bool saw_threads = false;
    std::string isa;
    const std::string& label = run.report_label;
    size_t pos = 0;
    while (pos < label.size()) {
      size_t end = label.find(' ', pos);
      if (end == std::string::npos) end = label.size();
      std::string tok = label.substr(pos, end - pos);
      pos = end + 1;
      if (tok.empty()) continue;
      size_t eq = tok.find('=');
      if (eq != std::string::npos && eq > 0) {
        std::string k = tok.substr(0, eq);
        std::string v = tok.substr(eq + 1);
        if (k == "threads") saw_threads = true;
        if (k == "isa") isa = v;
        AppendField(&line, k.c_str(), v, !LooksNumeric(v));
      } else if (variant.empty()) {
        variant = tok;
      }
    }
    if (!variant.empty()) AppendField(&line, "variant", variant, true);
    if (isa.empty()) {
      // Heuristic for binaries that encode the ISA inside the variant name.
      const std::string hay = variant.empty() ? label : variant;
      if (hay.find("avx512") != std::string::npos ||
          hay.find("vector") != std::string::npos) {
        isa = "avx512";
      } else if (hay.find("avx2") != std::string::npos) {
        isa = "avx2";
      } else if (hay.find("scalar") != std::string::npos) {
        isa = "scalar";
      }
    }
    if (!isa.empty()) AppendField(&line, "isa", isa, true);
    if (!saw_threads) {
      AppendField(&line, "threads", std::to_string(run.threads), false);
    }

    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", run.GetAdjustedRealTime());
    AppendField(&line, "real_time", buf, false);
    AppendField(&line, "time_unit",
                benchmark::GetTimeUnitString(run.time_unit), true);
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(run.iterations));
    AppendField(&line, "iterations", buf, false);
    auto gtps = run.counters.find("Gtps");
    if (gtps != run.counters.end()) {
      // Rate counters divide by the measured time base: CPU time of the
      // calling thread by default, wall-clock under UseRealTime(). For
      // multithreaded operators the CPU base inflates throughput (workers'
      // time isn't counted), so always report the wall-clock rate.
      double rate = gtps->second.value * 1e9;
      if (run.run_name.time_type.find("real_time") == std::string::npos &&
          run.real_accumulated_time > 0) {
        rate *= run.cpu_accumulated_time / run.real_accumulated_time;
      }
      std::snprintf(buf, sizeof(buf), "%.17g", rate);
      AppendField(&line, "tuples_per_s", buf, false);
    }
    line.append("}\n");
    *json_ << line;
    json_->flush();
  }

  std::ostream* json_;
};

/// main() body behind SIMDDB_BENCH_MAIN(): strips `--json <path>` (or
/// `--json=<path>`) from argv, hands the rest to google-benchmark, and runs
/// with the JSONL-teeing console reporter when a path was given.
inline int BenchMain(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(argc + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);
  int n_args = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&n_args, args.data());
  if (benchmark::ReportUnrecognizedArguments(n_args, args.data())) return 1;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open --json file %s\n", json_path.c_str());
      return 1;
    }
    JsonLinesReporter reporter(&out);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace simddb::bench

/// Drop-in replacement for BENCHMARK_MAIN() adding the `--json` flag.
#define SIMDDB_BENCH_MAIN()                              \
  int main(int argc, char** argv) {                      \
    return ::simddb::bench::BenchMain(argc, argv);       \
  }                                                      \
  int main(int, char**)

#endif  // SIMDDB_BENCH_BENCH_COMMON_H_
