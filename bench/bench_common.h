#ifndef SIMDDB_BENCH_BENCH_COMMON_H_
#define SIMDDB_BENCH_BENCH_COMMON_H_

// Shared helpers for the per-figure benchmark binaries. Each binary
// regenerates one table or figure of the paper's §10; rows/series are
// encoded as google-benchmark cases with throughput counters in billion
// tuples per second ("Gtps"), the unit the paper's figures use.
//
// Every binary uses SIMDDB_BENCH_MAIN() instead of BENCHMARK_MAIN(), which
// adds harness flags on top of google-benchmark's:
//
//   --json <path>   append (never truncate: collection scripts accumulate
//                   rows across binaries) one JSON object per completed
//                   case: name, label-encoded k=v fields (variant/isa/
//                   threads/...), throughput in tuples per second, and —
//                   when metrics are on — every obs counter/timer delta
//                   (steals, morsels, barrier_wait_ns, *_ns phases).
//   --metrics       obs::EnableMetrics(true) for the whole run.
//   --trace <path>  capture phase timings and write a chrome://tracing
//                   JSON file at exit (implies --metrics).
//
// SIMDDB_PERF=1 in the environment additionally samples hardware events
// (cycles / instructions / LLC-misses) per case via perf_event_open, when
// the kernel allows it (rows silently omit the fields otherwise).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/isa.h"
#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace simddb::bench {

/// True when SIMDDB_PERF requests hardware-event sampling per case.
inline bool PerfRequested() {
  static const bool on = [] {
    const char* env = std::getenv("SIMDDB_PERF");
    return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  }();
  return on;
}

/// Registry deltas attributed to untimed side-work (e.g. the paired
/// dynamic run behind fused bench rows). ExportMetricsCounters subtracts
/// them from the case's exported counters and then clears the map, so
/// side-work can never pollute a gated counter in the row it rode along
/// with. Harness-thread only, like ExportMetricsCounters itself.
inline std::map<std::string, uint64_t>& ExcludedMetricDeltas() {
  static auto* m = new std::map<std::string, uint64_t>();
  return *m;
}

/// Absolute registry values right now (empty while metrics are off). Pair
/// with AccumulateExcludedSince around side-work inside PauseTiming.
/// Thin alias over obs::SnapshotMap — the snapshot/delta primitives moved
/// into the library (obs/metrics.h) so the server's per-query accounting
/// and the bench harness share one implementation.
inline std::map<std::string, uint64_t> MetricsSnapshotNow() {
  return obs::SnapshotMap();
}

/// Marks everything the registry accumulated since `before` as side-work to
/// exclude from the current case's row. Returns the per-name deltas so the
/// caller can re-export chosen ones under an explicit side-channel name.
inline std::map<std::string, uint64_t> AccumulateExcludedSince(
    const std::map<std::string, uint64_t>& before) {
  std::map<std::string, uint64_t> deltas = obs::DeltaSince(before);
  auto& excluded = ExcludedMetricDeltas();
  for (const auto& [name, d] : deltas) excluded[name] += d;
  return deltas;
}

/// Attaches the delta of every registered obs instrument (and, under
/// SIMDDB_PERF=1, of the hardware events) since the previous call as plain
/// user counters, so each case's row reports its own share. No-op while
/// metrics are disabled. Called by SetTuplesPerSecond, i.e. once per case
/// from the harness thread after the measured loop.
inline void ExportMetricsCounters(benchmark::State& state) {
  if (obs::MetricsEnabled()) {
    static auto* last = new std::map<std::string, uint64_t>();
    auto& excluded = ExcludedMetricDeltas();
    for (const obs::MetricSample& s :
         obs::MetricsRegistry::Get().Snapshot()) {
      uint64_t& prev = (*last)[s.name];
      uint64_t delta = s.value - prev;
      prev = s.value;
      auto it = excluded.find(s.name);
      if (it != excluded.end()) delta -= delta < it->second ? delta : it->second;
      state.counters[s.name] =
          benchmark::Counter(static_cast<double>(delta));
    }
    excluded.clear();
  }
  if (PerfRequested()) {
    static obs::PerfCounters* perf = [] {
      auto* p = new obs::PerfCounters();
      if (p->available()) p->Start();
      return p;
    }();
    if (perf->available()) {
      static obs::PerfCounters::Reading prev{};
      const obs::PerfCounters::Reading now = perf->Read();
      state.counters["cycles"] =
          benchmark::Counter(static_cast<double>(now.cycles - prev.cycles));
      state.counters["instructions"] = benchmark::Counter(
          static_cast<double>(now.instructions - prev.instructions));
      state.counters["llc_misses"] = benchmark::Counter(
          static_cast<double>(now.llc_misses - prev.llc_misses));
      prev = now;
    }
  }
}

/// Sets the standard throughput counter (billion tuples per second) and
/// exports any active observability counters for this case.
inline void SetTuplesPerSecond(benchmark::State& state, double tuples_per_iter) {
  state.counters["Gtps"] = benchmark::Counter(
      tuples_per_iter * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  ExportMetricsCounters(state);
}

/// A lazily-built, cached uniform (key, payload) column pair, shared across
/// benchmark cases of one binary so data generation isn't repeated.
struct KeyPayColumns {
  AlignedBuffer<uint32_t> keys;
  AlignedBuffer<uint32_t> pays;

  static const KeyPayColumns& Get(size_t n, uint32_t key_min,
                                  uint32_t key_max, uint64_t seed) {
    static std::map<std::tuple<size_t, uint32_t, uint32_t, uint64_t>,
                    std::unique_ptr<KeyPayColumns>>* cache =
        new std::map<std::tuple<size_t, uint32_t, uint32_t, uint64_t>,
                     std::unique_ptr<KeyPayColumns>>();
    auto key = std::make_tuple(n, key_min, key_max, seed);
    auto it = cache->find(key);
    if (it == cache->end()) {
      auto cols = std::make_unique<KeyPayColumns>();
      cols->keys.Reset(n + 16);
      cols->pays.Reset(n + 16);
      FillUniform(cols->keys.data(), n, seed, key_min, key_max);
      FillSequential(cols->pays.data(), n, 0);
      it = cache->emplace(key, std::move(cols)).first;
    }
    return *it->second;
  }
};

/// Skips the benchmark case when the required ISA is unavailable.
inline bool RequireIsa(benchmark::State& state, Isa isa) {
  if (!IsaSupported(isa)) {
    state.SkipWithError("ISA not supported on this host");
    return false;
  }
  return true;
}

/// Console reporter that additionally appends one JSON object per finished
/// case to a JSONL stream. Line assembly (label parsing, quoting, number
/// validity) lives in obs/jsonl.h so the unit suite can verify that every
/// emitted line is valid JSON without a google-benchmark dependency.
class JsonLinesReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLinesReporter(std::ostream* json_out) : json_(json_out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      WriteRun(run);
    }
  }

 private:
  void WriteRun(const Run& run) {
    obs::BenchJsonRow row;
    row.name = run.benchmark_name();
    row.label = run.report_label;
    row.threads = run.threads;
    row.real_time = run.GetAdjustedRealTime();
    row.time_unit = benchmark::GetTimeUnitString(run.time_unit);
    row.iterations = static_cast<long long>(run.iterations);
    for (const auto& [name, counter] : run.counters) {
      if (name == "Gtps") {
        // Rate counters divide by the measured time base: CPU time of the
        // calling thread by default, wall-clock under UseRealTime(). For
        // multithreaded operators the CPU base inflates throughput
        // (workers' time isn't counted), so always report the wall-clock
        // rate.
        double rate = counter.value * 1e9;
        if (run.run_name.time_type.find("real_time") == std::string::npos &&
            run.real_accumulated_time > 0) {
          rate *= run.cpu_accumulated_time / run.real_accumulated_time;
        }
        row.has_tuples_per_s = true;
        row.tuples_per_s = rate;
      } else {
        // Observability counters / perf events from ExportMetricsCounters.
        row.metrics.emplace_back(name, counter.value);
      }
    }
    *json_ << obs::BuildBenchJsonLine(row);
    json_->flush();
  }

  std::ostream* json_;
};

/// main() body behind SIMDDB_BENCH_MAIN(): strips the harness flags
/// (`--json <path>`, `--metrics`, `--trace <path>`; `=`-forms accepted)
/// from argv and hands the rest to google-benchmark. Runs with the
/// JSONL-teeing console reporter when a --json path was given; the JSONL
/// file is opened in append mode so collection scripts can accumulate rows
/// from several binaries into one file (the old truncating open silently
/// discarded every binary's rows but the last).
inline int BenchMain(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  bool metrics_flag = false;
  std::vector<char*> args;
  args.reserve(argc + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_flag = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);
  int n_args = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&n_args, args.data());
  if (benchmark::ReportUnrecognizedArguments(n_args, args.data())) return 1;
  if (metrics_flag) obs::EnableMetrics(true);
  if (!trace_path.empty()) obs::StartTrace();  // also enables metrics
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    std::ofstream out(json_path, std::ios::app);
    if (!out) {
      std::fprintf(stderr, "cannot open --json file %s\n", json_path.c_str());
      return 1;
    }
    JsonLinesReporter reporter(&out);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  if (!trace_path.empty()) {
    obs::StopTrace();
    std::ofstream tf(trace_path);
    if (!tf) {
      std::fprintf(stderr, "cannot open --trace file %s\n",
                   trace_path.c_str());
      return 1;
    }
    obs::WriteChromeTrace(tf);
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace simddb::bench

/// Drop-in replacement for BENCHMARK_MAIN() adding the `--json` flag.
#define SIMDDB_BENCH_MAIN()                              \
  int main(int argc, char** argv) {                      \
    return ::simddb::bench::BenchMain(argc, argv);       \
  }                                                      \
  int main(int, char**)

#endif  // SIMDDB_BENCH_BENCH_COMMON_H_
