// Fig. 10: Bloom filter probing throughput vs. filter size, scalar vs.
// vectorized ([27] on 512-bit vectors, plus the AVX2 form). 5 hash
// functions, 10 bits per item, 5% of probe keys qualify.

#include <memory>

#include "bench/bench_common.h"
#include "bloom/bloom_filter.h"

namespace simddb::bench {
namespace {

constexpr size_t kProbes = size_t{1} << 22;

struct Setup {
  std::unique_ptr<BloomFilter> filter;
  AlignedBuffer<uint32_t> p_keys, p_pays;

  explicit Setup(size_t filter_bytes) {
    size_t n_bits = filter_bytes * 8;
    size_t n_items = n_bits / 10;
    filter = std::make_unique<BloomFilter>(n_bits, 5);
    AlignedBuffer<uint32_t> items(n_items + 16);
    FillUniqueShuffled(items.data(), n_items, 1);
    filter->Add(items.data(), n_items);
    p_keys.Reset(kProbes + 16);
    p_pays.Reset(kProbes + 16);
    FillProbeKeys(p_keys.data(), kProbes, items.data(), n_items, 0.05, 2);
    FillSequential(p_pays.data(), kProbes, 0);
  }

  static Setup& Get(size_t filter_bytes) {
    static auto* cache = new std::map<size_t, std::unique_ptr<Setup>>();
    auto it = cache->find(filter_bytes);
    if (it == cache->end()) {
      it = cache->emplace(filter_bytes, std::make_unique<Setup>(filter_bytes))
               .first;
    }
    return *it->second;
  }
};

void BM_BloomProbe(benchmark::State& state) {
  const auto isa = static_cast<Isa>(state.range(0));
  const size_t filter_bytes = static_cast<size_t>(state.range(1)) * 1024;
  if (!RequireIsa(state, isa)) return;
  Setup& s = Setup::Get(filter_bytes);
  AlignedBuffer<uint32_t> ok(kProbes + 16), op(kProbes + 16);
  size_t kept = 0;
  for (auto _ : state) {
    kept = s.filter->Probe(isa, s.p_keys.data(), s.p_pays.data(), kProbes,
                           ok.data(), op.data());
    benchmark::DoNotOptimize(kept);
  }
  SetTuplesPerSecond(state, static_cast<double>(kProbes));
  state.counters["selectivity_pct"] = 100.0 * kept / kProbes;
  state.SetLabel(IsaName(isa));
}

BENCHMARK(BM_BloomProbe)
    ->ArgsProduct({{static_cast<int>(Isa::kScalar),
                    static_cast<int>(Isa::kAvx2),
                    static_cast<int>(Isa::kAvx512)},
                   {4, 16, 64, 256, 1024, 4096, 16384, 65536}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
