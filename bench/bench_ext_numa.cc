// Extension benchmark: NUMA placement and steal-scope sweep. One buffered
// partition pass (1M tuples, fanout 256 — the radixsort/join inner loop)
// under the two memory placements of numa/placement.h:
//
//   interleaved -> pages round-robin across nodes, hierarchical stealing
//                  (the neutral baseline: uniform bandwidth, remote steals
//                  allowed once a node runs dry).
//   node_local  -> output pages first-touched by the lane block that writes
//                  them, StealScope::kNodeStrict (morsels never cross
//                  nodes, so every access the pass makes stays node-local
//                  and steals_remote must be exactly 0).
//
// Rows carry the obs counters (steals_local / steals_remote /
// pages_first_touched) via --metrics, which scripts/check_bench_ranges.py
// gates on. On a single-node host both placements are no-ops and the two
// variants should tie; run under SIMDDB_NUMA_FAKE=2x4 to exercise the
// multi-node steal rings and touch loops (CI does), or on a real
// multi-node box to measure the actual bandwidth split. Outputs are
// byte-identical across placements by construction (the layout depends
// only on the morsel grid); numa_test asserts that, this binary measures
// the cost.

#include <string>

#include "bench/bench_common.h"
#include "numa/placement.h"
#include "numa/topology.h"
#include "partition/parallel_partition.h"
#include "partition/partition_fn.h"
#include "partition/shuffle.h"
#include "util/task_pool.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 20;  // 1M tuples per invocation
constexpr uint32_t kFanout = 256;

void BM_NumaPartition(benchmark::State& state) {
  const bool node_local = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  // The subject is placement, not the kernel: best available backend.
  const Isa isa = IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  const numa::NumaTopology& topo = numa::Topology();
  const auto& cols = KeyPayColumns::Get(kTuples, 0, 0xFFFFFFFFu, 7);
  PartitionFn fn = PartitionFn::Hash(kFanout);
  AlignedBuffer<uint32_t> out_k(ShuffleCapacity(kTuples)),
      out_p(ShuffleCapacity(kTuples));
  const numa::Placement placement = node_local
                                        ? numa::Placement::kNodeLocal
                                        : numa::Placement::kInterleaved;
  // Place the output (and re-place the inputs, value-preserving) before the
  // timed loop; the pages_first_touched counter still lands in this case's
  // row because counter deltas span everything since the previous case.
  numa::PlaceBuffer(out_k.data(), out_k.size() * sizeof(uint32_t), threads,
                    placement);
  numa::PlaceBuffer(out_p.data(), out_p.size() * sizeof(uint32_t), threads,
                    placement);
  numa::PlaceBuffer(const_cast<uint32_t*>(cols.keys.data()),
                    kTuples * sizeof(uint32_t), threads, placement);
  numa::PlaceBuffer(const_cast<uint32_t*>(cols.pays.data()),
                    kTuples * sizeof(uint32_t), threads, placement);
  const StealScope prev_scope = GetStealScope();
  SetStealScope(node_local ? StealScope::kNodeStrict
                           : StealScope::kHierarchical);
  ParallelPartitionResources res;
  for (auto _ : state) {
    ParallelPartitionPass(fn, cols.keys.data(), cols.pays.data(), kTuples,
                          out_k.data(), out_p.data(), isa, threads, &res,
                          nullptr);
    benchmark::DoNotOptimize(out_k.data());
  }
  SetStealScope(prev_scope);
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  state.SetLabel(std::string(node_local ? "numa_node_local"
                                        : "numa_interleaved") +
                 " nodes=" + std::to_string(topo.node_count()) +
                 " threads=" + std::to_string(threads) +
                 " isa=" + IsaName(isa) +
                 " fake=" + (topo.fake ? "1" : "0"));
}

// {placement (0=interleaved, 1=node_local), threads}. Fixed iterations so
// the steal-counter totals are comparable across variants; wall-clock
// timed since the work is multi-thread.
BENCHMARK(BM_NumaPartition)
    ->ArgsProduct({{0, 1}, {1, 2, 8}})
    ->Iterations(200)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
