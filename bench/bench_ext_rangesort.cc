// Extension benchmark: LSB radixsort vs. range-partitioned comparison sort
// — §8's premise that "radixsort and comparison sorting based on range
// partitioning have comparable performance" [26], here at several range
// fanouts, scalar vs. vector.

#include <cstring>

#include "bench/bench_common.h"
#include "sort/radix_sort.h"
#include "sort/range_sort.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 22;

void BM_RadixVsRangeSort(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  const uint32_t fanout = static_cast<uint32_t>(state.range(1));
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  const auto& cols = KeyPayColumns::Get(kTuples, 0, 0xFFFFFFFFu, 1);
  AlignedBuffer<uint32_t> keys(kTuples + 16), pays(kTuples + 16);
  AlignedBuffer<uint32_t> sk(kTuples + 16), sp(kTuples + 16);
  for (auto _ : state) {
    state.PauseTiming();
    std::memcpy(keys.data(), cols.keys.data(), kTuples * sizeof(uint32_t));
    std::memcpy(pays.data(), cols.pays.data(), kTuples * sizeof(uint32_t));
    state.ResumeTiming();
    if (fanout == 0) {
      RadixSortConfig cfg;
      cfg.isa = vec ? Isa::kAvx512 : Isa::kScalar;
      RadixSortPairs(keys.data(), pays.data(), sk.data(), sp.data(), kTuples,
                     cfg);
    } else {
      RangeSortConfig cfg;
      cfg.isa = vec ? Isa::kAvx512 : Isa::kScalar;
      cfg.fanout = fanout;
      RangeSortPairs(keys.data(), pays.data(), sk.data(), sp.data(), kTuples,
                     cfg);
    }
    benchmark::DoNotOptimize(keys.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  state.SetLabel(std::string(vec ? "vector" : "scalar") + "_" +
                 (fanout == 0 ? std::string("radixsort")
                              : "rangesort_f" + std::to_string(fanout)));
}

BENCHMARK(BM_RadixVsRangeSort)
    ->ArgsProduct({{0, 1}, {0 /*radix*/, 17, 289, 4913}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
