// Fig. 17: the paper compares a Xeon Phi 7120P (300 W TDP) against four
// Xeon E5-4620s (4 x 130 W) on radixsort and hash join, concluding that
// vectorization makes the simple-core platform ~1.5x more power efficient
// at equal performance. No second platform exists in this environment
// (documented substitution, DESIGN.md): this binary reproduces the figure's
// *structure* on one host — per-phase time breakdown for sort and join,
// scalar vs. vector — and reports an energy proxy (time x TDP) for each,
// so the scalar-vs-vector efficiency ratio stands in for the
// complex-core-vs-simple-core comparison.

#include <cstring>

#include "bench/bench_common.h"
#include "join/hash_join.h"
#include "sort/radix_sort.h"
#include "util/timer.h"

namespace simddb::bench {
namespace {

constexpr size_t kSortTuples = size_t{1} << 23;
constexpr size_t kJoinTuples = size_t{1} << 22;
constexpr double kTdpWatts = 300.0;  // Phi-class TDP for the proxy

void BM_SortPower(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  const auto& cols = KeyPayColumns::Get(kSortTuples, 0, 0xFFFFFFFFu, 1);
  AlignedBuffer<uint32_t> keys(kSortTuples + 16), pays(kSortTuples + 16);
  AlignedBuffer<uint32_t> sk(kSortTuples + 16), sp(kSortTuples + 16);
  RadixSortConfig cfg;
  cfg.isa = vec ? Isa::kAvx512 : Isa::kScalar;
  double seconds = 0;
  int iters = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::memcpy(keys.data(), cols.keys.data(),
                kSortTuples * sizeof(uint32_t));
    std::memcpy(pays.data(), cols.pays.data(),
                kSortTuples * sizeof(uint32_t));
    state.ResumeTiming();
    Timer t;
    RadixSortPairs(keys.data(), pays.data(), sk.data(), sp.data(),
                   kSortTuples, cfg);
    seconds += t.Seconds();
    ++iters;
  }
  SetTuplesPerSecond(state, static_cast<double>(kSortTuples));
  state.counters["joules_proxy"] = kTdpWatts * seconds / iters;
  state.SetLabel(std::string("radixsort_") + (vec ? "vector" : "scalar"));
}

void BM_JoinPower(benchmark::State& state) {
  const bool vec = state.range(0) != 0;
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  static AlignedBuffer<uint32_t>* bufs = nullptr;
  static AlignedBuffer<uint32_t>* arrays[4];
  if (bufs == nullptr) {
    for (auto& a : arrays) a = new AlignedBuffer<uint32_t>(kJoinTuples + 16);
    bufs = arrays[0];
    FillUniqueShuffled(arrays[0]->data(), kJoinTuples, 1);
    FillSequential(arrays[1]->data(), kJoinTuples, 0);
    FillProbeKeys(arrays[2]->data(), kJoinTuples, arrays[0]->data(),
                  kJoinTuples, 1.0, 2);
    FillSequential(arrays[3]->data(), kJoinTuples, 0);
  }
  JoinRelation r{arrays[0]->data(), arrays[1]->data(), kJoinTuples};
  JoinRelation s{arrays[2]->data(), arrays[3]->data(), kJoinTuples};
  JoinConfig cfg;
  cfg.isa = vec ? Isa::kAvx512 : Isa::kScalar;
  AlignedBuffer<uint32_t> ok(kJoinTuples + 16), orp(kJoinTuples + 16),
      osp(kJoinTuples + 16);
  JoinTimings sum;
  int iters = 0;
  for (auto _ : state) {
    JoinTimings t;
    size_t matches = HashJoinMaxPartition(r, s, cfg, ok.data(), orp.data(),
                                          osp.data(), &t);
    benchmark::DoNotOptimize(matches);
    sum.partition_s += t.partition_s;
    sum.build_s += t.build_s;
    sum.probe_s += t.probe_s;
    ++iters;
  }
  SetTuplesPerSecond(state, static_cast<double>(2 * kJoinTuples));
  state.counters["partition_ms"] = 1e3 * sum.partition_s / iters;
  state.counters["build_ms"] = 1e3 * sum.build_s / iters;
  state.counters["probe_ms"] = 1e3 * sum.probe_s / iters;
  state.counters["joules_proxy"] = kTdpWatts * sum.Total() / iters;
  state.SetLabel(std::string("hashjoin_") + (vec ? "vector" : "scalar"));
}

BENCHMARK(BM_SortPower)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinPower)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
