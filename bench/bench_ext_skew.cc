// Extension benchmark: skew sensitivity. The paper's evaluation uses
// uniform data and notes (§10) that "joins, partitioning, and sorting are
// faster under skew [5, 26]" without measuring it; this binary checks that
// claim for this implementation with Zipf-distributed keys at several
// skew factors, for the radix histogram, buffered shuffle, and the
// max-partition join.

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_static_partition.h"
#include "join/hash_join.h"
#include "partition/histogram.h"
#include "partition/shuffle.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 22;

const AlignedBuffer<uint32_t>& SkewedKeys(int theta_x100) {
  static auto* cache =
      new std::map<int, std::unique_ptr<AlignedBuffer<uint32_t>>>();
  auto it = cache->find(theta_x100);
  if (it == cache->end()) {
    auto keys = std::make_unique<AlignedBuffer<uint32_t>>(kTuples + 16);
    if (theta_x100 == 0) {
      FillUniform(keys->data(), kTuples, 1, 1, 1u << 22);
    } else {
      FillZipf(keys->data(), kTuples, 1u << 22, theta_x100 / 100.0, 1);
    }
    it = cache->emplace(theta_x100, std::move(keys)).first;
  }
  return *it->second;
}

void BM_SkewShuffle(benchmark::State& state) {
  const int theta_x100 = static_cast<int>(state.range(0));
  if (!RequireIsa(state, Isa::kAvx512)) return;
  const auto& keys = SkewedKeys(theta_x100);
  const auto& pays = KeyPayColumns::Get(kTuples, 0, 100, 2).pays;
  PartitionFn fn = PartitionFn::Hash(256);
  std::vector<uint32_t> hist(fn.fanout), offsets(fn.fanout);
  HistogramScalar(fn, keys.data(), kTuples, hist.data());
  AlignedBuffer<uint32_t> out_k(kTuples + 16), out_p(kTuples + 16);
  ShuffleBuffers bufs;
  for (auto _ : state) {
    uint32_t sum = 0;
    for (uint32_t p = 0; p < fn.fanout; ++p) {
      offsets[p] = sum;
      sum += hist[p];
    }
    ShuffleVectorBufferedAvx512(fn, keys.data(), pays.data(), kTuples,
                                offsets.data(), out_k.data(), out_p.data(),
                                &bufs);
    benchmark::DoNotOptimize(out_k.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  state.SetLabel("zipf_theta_x100=" + std::to_string(theta_x100));
}

void BM_SkewHistogram(benchmark::State& state) {
  const int theta_x100 = static_cast<int>(state.range(0));
  if (!RequireIsa(state, Isa::kAvx512)) return;
  const auto& keys = SkewedKeys(theta_x100);
  PartitionFn fn = PartitionFn::Hash(1u << 10);
  AlignedBuffer<uint32_t> hist(fn.fanout);
  HistogramWorkspace ws;
  for (auto _ : state) {
    HistogramReplicatedAvx512(fn, keys.data(), kTuples, hist.data(), &ws);
    benchmark::DoNotOptimize(hist.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  state.SetLabel("zipf_theta_x100=" + std::to_string(theta_x100));
}

void BM_SkewJoinProbe(benchmark::State& state) {
  // Skew on the probe side only (R stays unique, as in [5]).
  const int theta_x100 = static_cast<int>(state.range(0));
  if (!RequireIsa(state, Isa::kAvx512)) return;
  const size_t r_n = 1u << 20;
  static AlignedBuffer<uint32_t>* r_keys = nullptr;
  static AlignedBuffer<uint32_t>* r_pays = nullptr;
  if (r_keys == nullptr) {
    r_keys = new AlignedBuffer<uint32_t>(r_n + 16);
    r_pays = new AlignedBuffer<uint32_t>(r_n + 16);
    FillUniqueShuffled(r_keys->data(), r_n, 5, 1);
    FillSequential(r_pays->data(), r_n, 0);
  }
  AlignedBuffer<uint32_t> s_keys(kTuples + 16), s_pays(kTuples + 16);
  if (theta_x100 == 0) {
    FillUniform(s_keys.data(), kTuples, 7, 1, static_cast<uint32_t>(r_n));
  } else {
    FillZipf(s_keys.data(), kTuples, r_n, theta_x100 / 100.0, 7);
  }
  FillSequential(s_pays.data(), kTuples, 0);
  JoinRelation r{r_keys->data(), r_pays->data(), r_n};
  JoinRelation s{s_keys.data(), s_pays.data(), kTuples};
  JoinConfig cfg;
  cfg.isa = Isa::kAvx512;
  AlignedBuffer<uint32_t> ok(kTuples + 16), orp(kTuples + 16),
      osp(kTuples + 16);
  size_t matches = 0;
  for (auto _ : state) {
    matches = HashJoinMaxPartition(r, s, cfg, ok.data(), orp.data(),
                                   osp.data());
    benchmark::DoNotOptimize(matches);
  }
  SetTuplesPerSecond(state, static_cast<double>(r_n + kTuples));
  state.SetLabel("zipf_theta_x100=" + std::to_string(theta_x100));
}

// Full parallel partition pass at 8 workers on the skewed keys: TaskPool
// work-stealing vs the static contiguous chunking of the spawn-per-call
// baseline it replaced. Stealing must be >= static at every skew level.
void BM_SkewParallelPartition(benchmark::State& state) {
  const int theta_x100 = static_cast<int>(state.range(0));
  const bool stealing = state.range(1) != 0;
  const int threads = 8;
  if (!RequireIsa(state, Isa::kAvx512)) return;
  const auto& keys = SkewedKeys(theta_x100);
  const auto& pays = KeyPayColumns::Get(kTuples, 0, 100, 2).pays;
  PartitionFn fn = PartitionFn::Hash(256);
  AlignedBuffer<uint32_t> out_k(kTuples + 16), out_p(kTuples + 16);
  ParallelPartitionResources res;
  for (auto _ : state) {
    if (stealing) {
      ParallelPartitionPass(fn, keys.data(), pays.data(), kTuples,
                            out_k.data(), out_p.data(), Isa::kAvx512, threads,
                            &res, nullptr);
    } else {
      StaticChunkPartitionPass(fn, keys.data(), pays.data(), kTuples,
                               out_k.data(), out_p.data(), Isa::kAvx512,
                               threads, &res);
    }
    benchmark::DoNotOptimize(out_k.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  state.SetLabel("zipf_theta_x100=" + std::to_string(theta_x100) +
                 " sched=" + (stealing ? "stealing" : "static") +
                 " threads=" + std::to_string(threads));
}

BENCHMARK(BM_SkewHistogram)
    ->Arg(0)->Arg(50)->Arg(75)->Arg(99)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkewShuffle)
    ->Arg(0)->Arg(50)->Arg(75)->Arg(99)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkewJoinProbe)
    ->Arg(0)->Arg(50)->Arg(75)->Arg(99)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkewParallelPartition)
    ->ArgsProduct({{0, 50, 75, 99}, {0, 1}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
