// Ablation (DESIGN.md / App. E): bucket layout for vertical hash-table
// access. The paper packs keys and payloads into interleaved 64-bit pairs
// and fetches both with two 8-way 64-bit gathers, halving the number of
// cache accesses vs. fetching keys and payloads from split (SoA) arrays
// with two 16-way 32-bit gathers. This binary measures exactly that pair
// of access patterns at L1/L2/RAM-resident table sizes.
//
// (Compiled with the AVX-512 flags; skipped at runtime if unsupported.)

#include "bench/bench_common.h"
#include "core/avx512_ops.h"

namespace simddb::bench {
namespace {

namespace v = simddb::avx512;

constexpr size_t kAccesses = size_t{1} << 22;

enum Mode { kSplit32, kInterleaved64, kEmulated };

void BM_GatherLayout(benchmark::State& state) {
  const auto mode = static_cast<Mode>(state.range(0));
  const size_t table_bytes = static_cast<size_t>(state.range(1)) * 1024;
  if (!RequireIsa(state, Isa::kAvx512)) return;
  const size_t buckets = table_bytes / 8;
  AlignedBuffer<uint64_t> pairs(buckets);
  AlignedBuffer<uint32_t> keys(buckets), pays(buckets);
  for (size_t i = 0; i < buckets; ++i) {
    keys[i] = static_cast<uint32_t>(i * 7);
    pays[i] = static_cast<uint32_t>(i * 13);
    pairs[i] = (static_cast<uint64_t>(pays[i]) << 32) | keys[i];
  }
  AlignedBuffer<uint32_t> idx(kAccesses + 16);
  FillUniform(idx.data(), kAccesses, 3, 0,
              static_cast<uint32_t>(buckets - 1));
  __m512i acc = _mm512_setzero_si512();
  for (auto _ : state) {
    for (size_t i = 0; i + 16 <= kAccesses; i += 16) {
      __m512i h = _mm512_load_si512(idx.data() + i);
      __m512i k, p;
      switch (mode) {
        case kInterleaved64:
          v::GatherPairs(pairs.data(), h, &k, &p);
          break;
        case kSplit32:
          k = v::Gather(keys.data(), h);
          p = v::Gather(pays.data(), h);
          break;
        case kEmulated:  // App. B software gather
          k = v::GatherEmulated(keys.data(), h);
          p = v::GatherEmulated(pays.data(), h);
          break;
      }
      acc = _mm512_add_epi32(acc, _mm512_xor_si512(k, p));
    }
    benchmark::DoNotOptimize(acc);
  }
  SetTuplesPerSecond(state, static_cast<double>(kAccesses));
  static const char* kNames[] = {"split_32bit_gathers",
                                 "interleaved_64bit_gathers",
                                 "emulated_gathers_appB"};
  state.SetLabel(kNames[mode]);
}

BENCHMARK(BM_GatherLayout)
    ->ArgsProduct({{kSplit32, kInterleaved64, kEmulated},
                   {16, 256, 16384, 131072}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
