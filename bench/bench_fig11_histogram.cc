// Fig. 11: radix & hash histogram generation throughput vs. fanout (2^3 ..
// 2^13): scalar radix, scalar hash, vector with conflict serialization,
// vector with replicated counts, vector with replicated 8-bit compressed
// counts.

#include "bench/bench_common.h"
#include "partition/histogram.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 23;

enum Variant {
  kScalarRadix,
  kScalarHash,
  kSerialized,
  kReplicated,
  kCompressed,
};

void BM_Histogram(benchmark::State& state) {
  const auto variant = static_cast<Variant>(state.range(0));
  const auto bits = static_cast<uint32_t>(state.range(1));
  if (variant >= kSerialized && !RequireIsa(state, Isa::kAvx512)) return;
  const auto& cols = KeyPayColumns::Get(kTuples, 0, 0xFFFFFFFFu, 1);
  PartitionFn fn = variant == kScalarRadix || variant == kSerialized ||
                           variant == kReplicated || variant == kCompressed
                       ? PartitionFn::Radix(bits, 32 - bits)
                       : PartitionFn::Hash(1u << bits);
  // The paper's vector series use radix/hash interchangeably ("hash
  // partitioning becomes equally fast to radix"); we use radix for them.
  AlignedBuffer<uint32_t> hist(fn.fanout);
  HistogramWorkspace ws;
  for (auto _ : state) {
    switch (variant) {
      case kScalarRadix:
      case kScalarHash:
        HistogramScalar(fn, cols.keys.data(), kTuples, hist.data());
        break;
      case kSerialized:
        HistogramSerializedAvx512(fn, cols.keys.data(), kTuples, hist.data());
        break;
      case kReplicated:
        HistogramReplicatedAvx512(fn, cols.keys.data(), kTuples, hist.data(),
                                  &ws);
        break;
      case kCompressed:
        HistogramCompressedAvx512(fn, cols.keys.data(), kTuples, hist.data(),
                                  &ws);
        break;
    }
    benchmark::DoNotOptimize(hist.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  static const char* kNames[] = {"scalar_radix", "scalar_hash",
                                 "vector_serialized", "vector_replicated",
                                 "vector_compressed"};
  state.SetLabel(kNames[variant]);
}

BENCHMARK(BM_Histogram)
    ->ArgsProduct({{kScalarRadix, kScalarHash, kSerialized, kReplicated,
                    kCompressed},
                   {3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
