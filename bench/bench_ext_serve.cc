// Extension benchmark: sustained concurrent serving through src/server/.
// N client threads each own a QuerySession against one process-wide Catalog
// and QueryScheduler; every iteration is one wave — each client submits one
// Q3-shaped query (its own disjoint value window over the shared fact
// table) and blocks for the ResultSet. The axes:
//
//   clients {8, 64} x executor threads {1, 8} x shared scans {off, on}
//
// With shared scans off every query runs its own full sweep of S; with them
// on the scheduler gathers the wave (shared_gather_hint = clients) and one
// member sweeps S once for the whole group, each member's skip-empty chain
// consuming only its window's chunk band. The fact table's value column is
// sequential, so the per-client windows are contiguous disjoint chunk bands
// — the clustered shape table sharing exists for.
//
// Per-row counters beyond the registry deltas:
//
//   qps                queries completed per second of wall time
//   p50_ns / p99_ns    per-query latency percentiles over the whole run
//                      (Execute call, admission wait included)
//   min_query_morsels  MIN over queries of stats.morsels_drained — the
//                      no-starvation observable the baseline gate holds
//                      >= 1 (shared rows report the group sweep's total)
//   queries_completed  total ResultSets with ok = true (waves x clients)
//
// The reported Gtps counts logical tuples served (clients x |S| per wave):
// by that yardstick a shared sweep's win is mechanical — one scan feeds N
// answers — and the chunks_pushed registry delta is what the cross-row
// gate compares (shared rows must push well under half the chunks of their
// unshared counterpart).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "exec/query.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "server/catalog.h"
#include "server/scheduler.h"
#include "server/session.h"

namespace simddb::bench {
namespace {

constexpr size_t kRTuples = size_t{64} << 10;  // dimension: 64K rows
constexpr size_t kSTuples = size_t{1} << 20;   // fact: 1M rows

/// The process-wide catalog a serving process would load at startup:
/// R(pk, attr) with unique sequential keys, S(fk, val) with val = row
/// position (clustered: a value window is a contiguous chunk band).
const server::Catalog& ServeCatalog() {
  static server::Catalog* catalog = [] {
    auto* c = new server::Catalog();
    AlignedBuffer<uint32_t> r_keys(kRTuples + 16), r_attrs(kRTuples + 16);
    FillSequential(r_keys.data(), kRTuples, 1);
    FillUniform(r_attrs.data(), kRTuples, 5, 1, 1024);
    c->RegisterTable("R", r_keys.data(), r_attrs.data(), kRTuples);
    AlignedBuffer<uint32_t> s_fks(kSTuples + 16), s_vals(kSTuples + 16);
    FillUniform(s_fks.data(), kSTuples, 6, 1,
                static_cast<uint32_t>(kRTuples));
    FillSequential(s_vals.data(), kSTuples, 0);
    c->RegisterTable("S", s_fks.data(), s_vals.data(), kSTuples);
    return c;
  }();
  return *catalog;
}

/// Client i of `clients` probes its own disjoint window of the fact table.
server::QuerySpec ClientSpec(int i, int clients) {
  server::QuerySpec spec;
  spec.build_table = "R";
  spec.probe_table = "S";
  spec.r_lo = 1;
  spec.r_hi = static_cast<uint32_t>((3 * kRTuples) / 4);
  const uint32_t w = static_cast<uint32_t>(kSTuples / clients);
  spec.s_lo = static_cast<uint32_t>(i) * w;
  spec.s_hi = spec.s_lo + w - 1;
  spec.max_groups_hint = 2048;
  return spec;
}

void BM_Serve(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const bool shared = state.range(2) != 0;

  const server::Catalog& catalog = ServeCatalog();
  server::SchedulerOptions opts;
  opts.shared_scans = shared;
  // Waves are synchronized below, so the whole wave gathers into one group;
  // the timeout is a liveness backstop, not the close signal.
  opts.shared_gather_hint = static_cast<size_t>(clients);
  opts.shared_gather_timeout_ns = 100'000'000;
  server::QueryScheduler sched(&catalog, opts);

  exec::ExecConfig cfg;
  cfg.threads = threads;
  // Dynamic chains on both sides of the shared axis: the shared sweep is a
  // dynamic chain by construction, and identical executors keep the
  // chunks_pushed comparison structural.
  cfg.pipeline_mode = exec::PipelineMode::kDynamic;

  std::vector<uint64_t> latencies_ns;
  latencies_ns.reserve(64 * static_cast<size_t>(clients));
  uint64_t completed = 0;
  uint64_t min_morsels = ~uint64_t{0};

  for (auto _ : state) {
    std::vector<server::ResultSet> results(clients);
    std::vector<uint64_t> wave_ns(clients);
    std::atomic<int> ready{0};
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      workers.emplace_back([&, i] {
        server::QuerySession session(&catalog, &sched);
        const server::QuerySpec spec = ClientSpec(i, clients);
        ready.fetch_add(1);
        while (ready.load() < clients) std::this_thread::yield();
        const uint64_t t0 = obs::NowNs();
        results[i] = session.Execute(spec, cfg);
        wave_ns[i] = obs::NowNs() - t0;
      });
    }
    for (auto& w : workers) w.join();
    for (int i = 0; i < clients; ++i) {
      if (!results[i].ok) {
        state.SkipWithError(("query failed: " + results[i].error).c_str());
        return;
      }
      ++completed;
      latencies_ns.push_back(wave_ns[i]);
      min_morsels = std::min(min_morsels, results[i].stats.morsels_drained);
    }
  }

  std::sort(latencies_ns.begin(), latencies_ns.end());
  auto pct = [&](double p) {
    if (latencies_ns.empty()) return uint64_t{0};
    const size_t at = std::min(
        latencies_ns.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_ns.size())));
    return latencies_ns[at];
  };
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(clients), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["p50_ns"] = benchmark::Counter(static_cast<double>(pct(0.50)));
  state.counters["p99_ns"] = benchmark::Counter(static_cast<double>(pct(0.99)));
  state.counters["min_query_morsels"] = benchmark::Counter(
      static_cast<double>(completed > 0 ? min_morsels : 0));
  state.counters["queries_completed"] =
      benchmark::Counter(static_cast<double>(completed));
  // Logical serving throughput: every query answers over the whole fact
  // table's key space, so a wave serves clients x |S| tuples.
  SetTuplesPerSecond(state,
                     static_cast<double>(kSTuples) * static_cast<double>(clients));
  state.SetLabel(std::string(shared ? "serve_shared" : "serve_solo") +
                 " clients=" + std::to_string(clients) +
                 " threads=" + std::to_string(threads) +
                 " shared=" + (shared ? "1" : "0"));
}

// {clients, threads, shared}. Solo/shared pairs register adjacently per
// (clients, threads) cell so the chunks_pushed comparison measures them
// seconds apart. Fixed iterations keep the counter totals comparable
// across the shared axis (same number of waves on both sides).
BENCHMARK(BM_Serve)
    ->ArgsProduct({{8}, {1}, {0, 1}})
    ->ArgsProduct({{8}, {8}, {0, 1}})
    ->ArgsProduct({{64}, {1}, {0, 1}})
    ->ArgsProduct({{64}, {8}, {0, 1}})
    ->Iterations(10)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BM_ServeWeighted: mixed-weight fairness under contention. Two client
// classes share one scheduler — half submit at weight 1, half at weight 4 —
// and every client resubmits its fixed-cost query (a disjoint 1/clients
// window of S, identical work per query) for a fixed wall window per
// iteration. The TaskPool's weighted-fair vtime advances tasks/weight, so a
// weight-4 query's morsels are charged at a quarter rate and its class
// should complete queries at a multiple of the weight-1 class's rate.
//
//   wfq_w1_completed / wfq_w4_completed   completions per class, whole run
//
// The baseline gate holds the per-class completion ratio w4/w1 above 1.3 —
// well under the ideal 4x (morsel granularity, admission-free scheduling
// and the non-pool tail of each query all dilute the share) but strictly
// above "weights ignored". Executor threads >= 2 is a precondition: the
// threads=1 inline path runs morsels on the caller and cannot be throttled
// by the pool's fair queue.
void BM_ServeWeighted(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr uint64_t kWindowNs = 250'000'000;  // 250 ms per iteration

  const server::Catalog& catalog = ServeCatalog();
  server::SchedulerOptions opts;
  opts.shared_scans = false;
  server::QueryScheduler sched(&catalog, opts);

  exec::ExecConfig cfg;
  cfg.threads = threads;
  cfg.pipeline_mode = exec::PipelineMode::kDynamic;

  uint64_t w1_completed = 0, w4_completed = 0;

  for (auto _ : state) {
    std::vector<uint64_t> done(clients, 0);
    std::atomic<int> ready{0};
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      workers.emplace_back([&, i] {
        server::QuerySession session(&catalog, &sched);
        const server::QuerySpec spec = ClientSpec(i, clients);
        const uint64_t weight = (i % 2 == 0) ? 1 : 4;
        ready.fetch_add(1);
        while (ready.load() < clients) std::this_thread::yield();
        const uint64_t deadline = obs::NowNs() + kWindowNs;
        while (obs::NowNs() < deadline) {
          const server::ResultSet rs = session.Execute(spec, cfg, weight);
          if (!rs.ok) return;  // surfaces below as a missing completion
          ++done[i];
        }
      });
    }
    for (auto& w : workers) w.join();
    for (int i = 0; i < clients; ++i) {
      ((i % 2 == 0) ? w1_completed : w4_completed) += done[i];
    }
  }

  if (w1_completed == 0 || w4_completed == 0) {
    state.SkipWithError("a weight class finished zero queries");
    return;
  }
  state.counters["wfq_w1_completed"] =
      benchmark::Counter(static_cast<double>(w1_completed));
  state.counters["wfq_w4_completed"] =
      benchmark::Counter(static_cast<double>(w4_completed));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(w1_completed + w4_completed),
      benchmark::Counter::kIsRate);
  state.SetLabel("wfq clients=" + std::to_string(clients) +
                 " threads=" + std::to_string(threads) + " weights=1,4");
}

// {clients, threads}. threads >= 2 by construction (see above); clients
// split evenly between the weight classes.
BENCHMARK(BM_ServeWeighted)
    ->ArgsProduct({{8}, {8}})
    ->Iterations(3)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BM_ServeWire: the BM_Serve wave pattern pushed through the real network
// stack — a net::Server on a Unix-domain socket, persistent client
// connections, one QUERY line and one framed response per client per wave.
// Row counts are validated against the trailer every wave, so the row also
// functions as a continuous byte-framing check under concurrency. Extra
// counters:
//
//   wire_rows      total ROW frames decoded across the run
//   wire_queries   QUERY exchanges that returned OK
//
// The tuples/s yardstick matches BM_Serve (clients x |S| logical tuples per
// wave), making the wire tax directly readable against the in-process rows.
void BM_ServeWire(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));

  const server::Catalog& catalog = ServeCatalog();
  net::ServerOptions opts;
  opts.unix_path = "/tmp/simddb_bench_wire_" + std::to_string(getpid()) +
                   "_" + std::to_string(state.range(0)) + "_" +
                   std::to_string(state.range(1)) + ".sock";
  opts.handler_threads = clients;
  opts.exec.threads = threads;
  opts.exec.pipeline_mode = exec::PipelineMode::kDynamic;
  net::Server server(&catalog, opts);
  std::string error;
  if (!server.Start(&error)) {
    state.SkipWithError(("server start failed: " + error).c_str());
    return;
  }

  // Persistent connections and pre-rendered request lines, one per client.
  std::vector<net::Client> conns(clients);
  std::vector<std::string> lines(clients);
  for (int i = 0; i < clients; ++i) {
    if (!conns[i].ConnectUnix(opts.unix_path, &error)) {
      state.SkipWithError(("connect failed: " + error).c_str());
      server.Stop();
      return;
    }
    const server::QuerySpec spec = ClientSpec(i, clients);
    lines[i] = "QUERY build=R probe=S r=[" + std::to_string(spec.r_lo) + "," +
               std::to_string(spec.r_hi) + "] s=[" +
               std::to_string(spec.s_lo) + "," + std::to_string(spec.s_hi) +
               "]";
  }

  std::vector<uint64_t> latencies_ns;
  latencies_ns.reserve(64 * static_cast<size_t>(clients));
  std::atomic<uint64_t> wire_rows{0};
  uint64_t wire_queries = 0;

  for (auto _ : state) {
    std::vector<bool> ok(clients, false);
    std::vector<uint64_t> rows(clients, 0);
    std::vector<uint64_t> wave_ns(clients);
    std::atomic<int> ready{0};
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      workers.emplace_back([&, i] {
        ready.fetch_add(1);
        while (ready.load() < clients) std::this_thread::yield();
        const uint64_t t0 = obs::NowNs();
        const net::WireResult r = conns[i].Query(lines[i]);
        wave_ns[i] = obs::NowNs() - t0;
        ok[i] = r.ok && r.rows.size() == r.rows_declared;
        rows[i] = r.rows.size();
      });
    }
    for (auto& w : workers) w.join();
    for (int i = 0; i < clients; ++i) {
      if (!ok[i]) {
        state.SkipWithError("wire query failed or row framing mismatched");
        server.Stop();
        return;
      }
      ++wire_queries;
      wire_rows.fetch_add(rows[i]);
      latencies_ns.push_back(wave_ns[i]);
    }
  }

  for (auto& c : conns) c.Quit();
  server.Stop();

  std::sort(latencies_ns.begin(), latencies_ns.end());
  auto pct = [&](double p) {
    if (latencies_ns.empty()) return uint64_t{0};
    const size_t at = std::min(
        latencies_ns.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latencies_ns.size())));
    return latencies_ns[at];
  };
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(clients), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["p50_ns"] = benchmark::Counter(static_cast<double>(pct(0.50)));
  state.counters["p99_ns"] = benchmark::Counter(static_cast<double>(pct(0.99)));
  state.counters["wire_rows"] =
      benchmark::Counter(static_cast<double>(wire_rows.load()));
  state.counters["wire_queries"] =
      benchmark::Counter(static_cast<double>(wire_queries));
  SetTuplesPerSecond(state,
                     static_cast<double>(kSTuples) * static_cast<double>(clients));
  state.SetLabel("wire clients=" + std::to_string(clients) +
                 " threads=" + std::to_string(threads));
}

// {clients, threads}: the socket tax at single-threaded and saturated
// executor settings, same wave shape as the in-process family.
BENCHMARK(BM_ServeWire)
    ->ArgsProduct({{8}, {1, 8}})
    ->Iterations(10)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
