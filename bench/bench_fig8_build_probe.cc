// Fig. 8: interleaved build & probe of shared-nothing LP, DH and cuckoo
// tables (the inner loop of a partitioned hash join), scalar vs. vector,
// with tables resident in L1 (~4 KB), L2 (~64 KB) and out of cache (~1 MB).
// 1:1 build:probe ratio, 50% load factor, all probes match. One iteration
// clears/builds/probes a whole batch of tables so small-table timings are
// meaningful; throughput is (|R| + |S|) / t as in the paper.

#include "bench/bench_common.h"
#include "hash/cuckoo.h"
#include "hash/double_hashing.h"
#include "hash/linear_probing.h"

namespace simddb::bench {
namespace {

enum Scheme { kLp, kDh, kCh };

constexpr size_t kTotalTuples = size_t{1} << 21;  // per side, whole batch

struct Workload {
  AlignedBuffer<uint32_t> b_keys, b_pays, p_keys, p_pays;
  size_t n_per_table;
  size_t n_tables;

  explicit Workload(size_t table_bytes) {
    size_t buckets = table_bytes / 8;
    n_per_table = buckets / 2;
    n_tables = std::max<size_t>(1, kTotalTuples / n_per_table);
    size_t total = n_per_table * n_tables;
    b_keys.Reset(total + 16);
    b_pays.Reset(total + 16);
    p_keys.Reset(total + 16);
    p_pays.Reset(total + 16);
    // One global unique-key pool sliced per table keeps per-slice keys
    // unique; probes are drawn from the matching slice (hit rate 1).
    FillUniqueShuffled(b_keys.data(), total, 1);
    FillSequential(b_pays.data(), total, 0);
    for (size_t t = 0; t < n_tables; ++t) {
      FillProbeKeys(p_keys.data() + t * n_per_table, n_per_table,
                    b_keys.data() + t * n_per_table, n_per_table, 1.0,
                    100 + t);
    }
    FillSequential(p_pays.data(), total, 0);
  }

  static Workload& Get(size_t table_bytes) {
    static auto* cache = new std::map<size_t, std::unique_ptr<Workload>>();
    auto it = cache->find(table_bytes);
    if (it == cache->end()) {
      it = cache->emplace(table_bytes,
                          std::make_unique<Workload>(table_bytes))
               .first;
    }
    return *it->second;
  }
};

void BM_BuildProbe(benchmark::State& state) {
  const auto scheme = static_cast<Scheme>(state.range(0));
  const bool vec = state.range(1) != 0;
  const size_t table_bytes = static_cast<size_t>(state.range(2)) * 1024;
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  Workload& w = Workload::Get(table_bytes);
  const size_t n = w.n_per_table;
  const size_t buckets = table_bytes / 8;
  AlignedBuffer<uint32_t> ok(n + 16), os(n + 16), orp(n + 16);

  LinearProbingTable lp(buckets);
  DoubleHashingTable dh(buckets);
  CuckooTable ch(buckets);
  size_t matches = 0;
  for (auto _ : state) {
    for (size_t t = 0; t < w.n_tables; ++t) {
      const uint32_t* bk = w.b_keys.data() + t * n;
      const uint32_t* bp = w.b_pays.data() + t * n;
      const uint32_t* pk = w.p_keys.data() + t * n;
      const uint32_t* pp = w.p_pays.data() + t * n;
      switch (scheme) {
        case kLp:
          lp.Clear();
          if (vec) {
            lp.BuildAvx512(bk, bp, n, true);
            matches = lp.ProbeAvx512(pk, pp, n, ok.data(), os.data(),
                                     orp.data());
          } else {
            lp.BuildScalar(bk, bp, n);
            matches = lp.ProbeScalar(pk, pp, n, ok.data(), os.data(),
                                     orp.data());
          }
          break;
        case kDh:
          dh.Clear();
          if (vec) {
            dh.BuildAvx512(bk, bp, n);
            matches = dh.ProbeAvx512(pk, pp, n, ok.data(), os.data(),
                                     orp.data());
          } else {
            dh.BuildScalar(bk, bp, n);
            matches = dh.ProbeScalar(pk, pp, n, ok.data(), os.data(),
                                     orp.data());
          }
          break;
        case kCh:
          ch.Clear();
          if (vec) {
            ch.BuildAvx512(bk, bp, n);
            matches = ch.ProbeVerticalSelectAvx512(pk, pp, n, ok.data(),
                                                   os.data(), orp.data());
          } else {
            ch.BuildScalar(bk, bp, n);
            matches = ch.ProbeScalarBranching(pk, pp, n, ok.data(),
                                              os.data(), orp.data());
          }
          break;
      }
      benchmark::DoNotOptimize(matches);
    }
  }
  SetTuplesPerSecond(state, static_cast<double>(2 * n * w.n_tables));
  static const char* kNames[] = {"LP", "DH", "CH"};
  state.SetLabel(std::string(kNames[scheme]) + (vec ? "_vector" : "_scalar"));
}

BENCHMARK(BM_BuildProbe)
    ->ArgsProduct({{kLp, kDh, kCh},
                   {0, 1},
                   // table bytes (KB): L1, L2, out-of-cache
                   {4, 64, 1024}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
