// Extension benchmark (beyond the paper's figures): hash group-by
// aggregation throughput, scalar vs. vertically vectorized, across group
// cardinalities (L1-resident groups to cache-straining) — the paper's §5
// second hash-table use, in the spirit of [25].

#include "agg/group_by.h"
#include "bench/bench_common.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 22;

void BM_GroupBy(benchmark::State& state) {
  const auto isa = static_cast<Isa>(state.range(0));
  const size_t n_groups = static_cast<size_t>(state.range(1));
  if (!RequireIsa(state, isa)) return;
  static auto* cache =
      new std::map<size_t, std::unique_ptr<AlignedBuffer<uint32_t>>>();
  auto it = cache->find(n_groups);
  if (it == cache->end()) {
    auto keys = std::make_unique<AlignedBuffer<uint32_t>>(kTuples + 16);
    FillWithRepeats(keys->data(), kTuples, n_groups, 1);
    it = cache->emplace(n_groups, std::move(keys)).first;
  }
  const uint32_t* keys = it->second->data();
  const auto& vals = KeyPayColumns::Get(kTuples, 0, 1'000'000, 2);
  GroupByAggregator agg(n_groups + 16);
  for (auto _ : state) {
    agg.Clear();
    agg.Accumulate(isa, keys, vals.keys.data(), kTuples);
    benchmark::DoNotOptimize(agg.num_groups());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  state.counters["groups"] = static_cast<double>(agg.num_groups());
  state.SetLabel(IsaName(isa));
}

BENCHMARK(BM_GroupBy)
    ->ArgsProduct({{static_cast<int>(Isa::kScalar),
                    static_cast<int>(Isa::kAvx512)},
                   {16, 256, 4096, 65536, 1 << 20}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
