// Extension benchmark: scheduler substrate. The paper's multi-core results
// (Fig. 16) assume the execution layer itself is free; this binary measures
// it. Repeated 1M-tuple partition passes at 8 workers compare the
// process-lifetime TaskPool (amortized spawn, work-stealing morsels) against
// the spawn-per-call statically-chunked ThreadTeam baseline it replaced, on
// uniform and on Zipf-clustered (sorted) inputs where per-morsel shuffle
// cost is heavily skewed by conflict serialization.

#include <algorithm>
#include <memory>

#include "bench/bench_common.h"
#include "bench/bench_static_partition.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 20;  // 1M tuples per invocation
constexpr uint32_t kFanout = 256;

// clustered=true sorts Zipf-distributed keys so the hot keys pack into a few
// morsels (maximal vector-lane conflicts there, none elsewhere) — the
// positional cost skew that static chunking is worst at.
const AlignedBuffer<uint32_t>& SchedKeys(bool clustered) {
  static auto* cache =
      new std::map<bool, std::unique_ptr<AlignedBuffer<uint32_t>>>();
  auto it = cache->find(clustered);
  if (it == cache->end()) {
    auto keys = std::make_unique<AlignedBuffer<uint32_t>>(kTuples + 16);
    if (clustered) {
      FillZipf(keys->data(), kTuples, 1u << 20, 0.99, 3);
      std::sort(keys->data(), keys->data() + kTuples);
    } else {
      FillUniform(keys->data(), kTuples, 3, 0, 0xFFFFFFFFu);
    }
    it = cache->emplace(clustered, std::move(keys)).first;
  }
  return *it->second;
}

void RunPartitionCase(benchmark::State& state, bool pool) {
  const int threads = static_cast<int>(state.range(0));
  const bool clustered = state.range(1) != 0;
  // Scheduler overhead is the subject, not the kernel: run the best
  // available backend so the bench produces rows (and gate metrics) on
  // hosts without AVX-512, and label the ISA that actually ran.
  const Isa isa =
      IsaSupported(Isa::kAvx512) ? Isa::kAvx512 : Isa::kScalar;
  const auto& keys = SchedKeys(clustered);
  const auto& pays = KeyPayColumns::Get(kTuples, 0, 100, 4).pays;
  PartitionFn fn = PartitionFn::Hash(kFanout);
  AlignedBuffer<uint32_t> out_k(kTuples + 16), out_p(kTuples + 16);
  ParallelPartitionResources res;
  for (auto _ : state) {
    if (pool) {
      ParallelPartitionPass(fn, keys.data(), pays.data(), kTuples,
                            out_k.data(), out_p.data(), isa, threads, &res,
                            nullptr);
    } else {
      StaticChunkPartitionPass(fn, keys.data(), pays.data(), kTuples,
                               out_k.data(), out_p.data(), isa, threads,
                               &res);
    }
    benchmark::DoNotOptimize(out_k.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  state.SetLabel(std::string("sched=") + (pool ? "pool" : "spawn_static") +
                 " threads=" + std::to_string(threads) +
                 " input=" + (clustered ? "zipf_clustered" : "uniform") +
                 " isa=" + IsaName(isa));
}

// Process-lifetime pool, work-stealing morsels.
void BM_PartitionPool(benchmark::State& state) {
  RunPartitionCase(state, true);
}

// Fresh std::threads per call, static contiguous chunks.
void BM_PartitionSpawn(benchmark::State& state) {
  RunPartitionCase(state, false);
}

// {threads, clustered}: 1000 iterations = the repeated-invocation microbench
// (1000 x 1M-tuple passes); wall-clock timed since the work is multi-thread.
BENCHMARK(BM_PartitionPool)
    ->ArgsProduct({{1, 2, 8}, {0, 1}})
    ->Iterations(1000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PartitionSpawn)
    ->ArgsProduct({{1, 2, 8}, {0, 1}})
    ->Iterations(1000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
