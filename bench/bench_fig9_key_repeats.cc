// Fig. 9: build & probe of L1-resident shared-nothing tables under key
// repeats, 1:10 build:probe ratio. Series: {no repeats, 100% match},
// {1.25 repeats, 80%}, {2.5, 40%}, {5, 20%} — expected output size is
// constant (~1 match per probe). Cuckoo only supports the unique-key case.

#include "bench/bench_common.h"
#include "hash/cuckoo.h"
#include "hash/double_hashing.h"
#include "hash/linear_probing.h"
#include "util/rng.h"

namespace simddb::bench {
namespace {

enum Scheme { kLp, kDh, kCh };

constexpr size_t kTableBytes = 4096;  // L1 resident
constexpr size_t kBuckets = kTableBytes / 8;
constexpr size_t kBuildPerTable = kBuckets / 2;
constexpr size_t kProbePerTable = kBuildPerTable * 10;
constexpr size_t kTables = 512;

struct Workload {
  AlignedBuffer<uint32_t> b_keys, b_pays, p_keys, p_pays;

  // repeats_x100: average key multiplicity * 100 (100, 125, 250, 500).
  explicit Workload(int repeats_x100) {
    size_t total_b = kBuildPerTable * kTables;
    size_t total_p = kProbePerTable * kTables;
    b_keys.Reset(total_b + 16);
    b_pays.Reset(total_b + 16);
    p_keys.Reset(total_p + 16);
    p_pays.Reset(total_p + 16);
    FillSequential(b_pays.data(), total_b, 0);
    FillSequential(p_pays.data(), total_p, 0);
    double hit_rate = 100.0 / repeats_x100;
    for (size_t t = 0; t < kTables; ++t) {
      uint32_t* bk = b_keys.data() + t * kBuildPerTable;
      size_t uniques = kBuildPerTable * 100 / repeats_x100;
      if (repeats_x100 == 100) {
        FillUniqueShuffled(bk, kBuildPerTable, t + 1);
      } else {
        FillWithRepeats(bk, kBuildPerTable, uniques, t + 1);
      }
      FillProbeKeys(p_keys.data() + t * kProbePerTable, kProbePerTable, bk,
                    kBuildPerTable, hit_rate, 1000 + t);
    }
  }

  static Workload& Get(int repeats_x100) {
    static auto* cache = new std::map<int, std::unique_ptr<Workload>>();
    auto it = cache->find(repeats_x100);
    if (it == cache->end()) {
      it = cache->emplace(repeats_x100,
                          std::make_unique<Workload>(repeats_x100))
               .first;
    }
    return *it->second;
  }
};

void BM_KeyRepeats(benchmark::State& state) {
  const auto scheme = static_cast<Scheme>(state.range(0));
  const bool vec = state.range(1) != 0;
  const int repeats_x100 = static_cast<int>(state.range(2));
  if (vec && !RequireIsa(state, Isa::kAvx512)) return;
  if (scheme == kCh && repeats_x100 != 100) {
    state.SkipWithError("cuckoo tables do not support key repeats");
    return;
  }
  Workload& w = Workload::Get(repeats_x100);
  // Worst-case matches per probe bounded by the max key multiplicity.
  size_t out_cap = kProbePerTable * (repeats_x100 / 100 + 2) + 16;
  AlignedBuffer<uint32_t> ok(out_cap), os(out_cap), orp(out_cap);
  LinearProbingTable lp(kBuckets);
  DoubleHashingTable dh(kBuckets);
  CuckooTable ch(kBuckets);
  size_t matches = 0;
  for (auto _ : state) {
    for (size_t t = 0; t < kTables; ++t) {
      const uint32_t* bk = w.b_keys.data() + t * kBuildPerTable;
      const uint32_t* bp = w.b_pays.data() + t * kBuildPerTable;
      const uint32_t* pk = w.p_keys.data() + t * kProbePerTable;
      const uint32_t* pp = w.p_pays.data() + t * kProbePerTable;
      switch (scheme) {
        case kLp:
          lp.Clear();
          if (vec) {
            lp.BuildAvx512(bk, bp, kBuildPerTable, repeats_x100 == 100);
            matches = lp.ProbeAvx512(pk, pp, kProbePerTable, ok.data(),
                                     os.data(), orp.data());
          } else {
            lp.BuildScalar(bk, bp, kBuildPerTable);
            matches = lp.ProbeScalar(pk, pp, kProbePerTable, ok.data(),
                                     os.data(), orp.data());
          }
          break;
        case kDh:
          dh.Clear();
          if (vec) {
            dh.BuildAvx512(bk, bp, kBuildPerTable);
            matches = dh.ProbeAvx512(pk, pp, kProbePerTable, ok.data(),
                                     os.data(), orp.data());
          } else {
            dh.BuildScalar(bk, bp, kBuildPerTable);
            matches = dh.ProbeScalar(pk, pp, kProbePerTable, ok.data(),
                                     os.data(), orp.data());
          }
          break;
        case kCh:
          ch.Clear();
          if (vec) {
            ch.BuildAvx512(bk, bp, kBuildPerTable);
            matches = ch.ProbeVerticalSelectAvx512(pk, pp, kProbePerTable,
                                                   ok.data(), os.data(),
                                                   orp.data());
          } else {
            ch.BuildScalar(bk, bp, kBuildPerTable);
            matches = ch.ProbeScalarBranching(pk, pp, kProbePerTable,
                                              ok.data(), os.data(),
                                              orp.data());
          }
          break;
      }
      benchmark::DoNotOptimize(matches);
    }
  }
  SetTuplesPerSecond(
      state,
      static_cast<double>((kBuildPerTable + kProbePerTable) * kTables));
  static const char* kNames[] = {"LP", "DH", "CH"};
  state.SetLabel(std::string(kNames[scheme]) + (vec ? "_vector" : "_scalar") +
                 "_rep" + std::to_string(repeats_x100));
}

BENCHMARK(BM_KeyRepeats)
    ->ArgsProduct({{kLp, kDh, kCh},
                   {0, 1},
                   // repeats x100: 1, 1.25, 2.5, 5 (match 100/80/40/20 %)
                   {100, 125, 250, 500}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
