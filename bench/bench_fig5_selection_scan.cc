// Fig. 5: selection scan throughput vs. selectivity, for the two scalar and
// four vectorized variants (plus the AVX2/Haswell pair). 32-bit keys and
// payloads; predicate k_lo <= k <= k_hi sized to hit each selectivity.

#include "bench/bench_common.h"
#include "scan/selection_scan.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 23;
constexpr uint32_t kKeyMax = 999'999;

void BM_SelectionScan(benchmark::State& state) {
  const auto variant = static_cast<ScanVariant>(state.range(0));
  const auto sel_pct = static_cast<uint32_t>(state.range(1));
  if (!ScanVariantSupported(variant)) {
    state.SkipWithError("variant unsupported");
    return;
  }
  const auto& cols = KeyPayColumns::Get(kTuples, 0, kKeyMax, 1);
  // Selectivity sel_pct%: range spanning that share of the key domain.
  uint32_t lo = 0;
  uint32_t hi = sel_pct == 0
                    ? 0  // ~one in a million
                    : static_cast<uint32_t>(
                          (static_cast<uint64_t>(kKeyMax) * sel_pct) / 100);
  AlignedBuffer<uint32_t> out_k(SelectionScanCapacity(kTuples));
  AlignedBuffer<uint32_t> out_p(SelectionScanCapacity(kTuples));
  size_t kept = 0;
  for (auto _ : state) {
    kept = SelectionScan(variant, cols.keys.data(), cols.pays.data(),
                         kTuples, lo, hi, out_k.data(), out_p.data());
    benchmark::DoNotOptimize(kept);
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  state.counters["selectivity_pct"] =
      100.0 * static_cast<double>(kept) / kTuples;
  state.SetLabel(ScanVariantName(variant));
}

BENCHMARK(BM_SelectionScan)
    ->ArgsProduct({{static_cast<int>(ScanVariant::kScalarBranching),
                    static_cast<int>(ScanVariant::kScalarBranchless),
                    static_cast<int>(ScanVariant::kVectorBitExtractDirect),
                    static_cast<int>(ScanVariant::kVectorStoreDirect),
                    static_cast<int>(ScanVariant::kVectorBitExtractIndirect),
                    static_cast<int>(ScanVariant::kVectorStoreIndirect),
                    static_cast<int>(ScanVariant::kAvx2Direct),
                    static_cast<int>(ScanVariant::kAvx2Indirect)},
                   {0, 1, 2, 5, 10, 20, 50, 100}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
