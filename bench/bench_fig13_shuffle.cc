// Fig. 13: out-of-cache radix shuffling throughput vs. fanout (2^3..2^13):
// scalar unbuffered, scalar buffered, vector unbuffered (Alg. 14), vector
// buffered (Alg. 15), the unstable hash-partitioning variant, and the SWWC
// write-combining kernels (swwc.h). swwc_planned additionally runs the full
// fanout-aware planner end-to-end (MultiPassRadixPartition), so its rows
// include histogram + prefix-sum work the kernel-only rows exclude.

#include <vector>

#include "bench/bench_common.h"
#include "partition/histogram.h"
#include "partition/plan.h"
#include "partition/shuffle.h"
#include "partition/swwc.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 23;  // 64 MB of key+payload

enum Variant {
  kScalarUnbuffered,
  kScalarBuffered,
  kVectorUnbuffered,
  kVectorBuffered,
  kVectorBufferedHashUnstable,
  kSwwcScalar,
  kSwwcAvx512,
  kSwwcPlanned,
};

bool NeedsAvx512(Variant v) {
  return v == kVectorUnbuffered || v == kVectorBuffered ||
         v == kVectorBufferedHashUnstable || v == kSwwcAvx512;
}

void BM_Shuffle(benchmark::State& state) {
  const auto variant = static_cast<Variant>(state.range(0));
  const auto bits = static_cast<uint32_t>(state.range(1));
  if (NeedsAvx512(variant) && !RequireIsa(state, Isa::kAvx512)) {
    return;
  }
  const auto& cols = KeyPayColumns::Get(kTuples, 0, 0xFFFFFFFFu, 1);
  PartitionFn fn = variant == kVectorBufferedHashUnstable
                       ? PartitionFn::Hash(1u << bits)
                       : PartitionFn::Radix(bits, 32 - bits);
  std::vector<uint32_t> hist(fn.fanout), offsets(fn.fanout);
  HistogramScalar(fn, cols.keys.data(), kTuples, hist.data());
  AlignedBuffer<uint32_t> out_k(ShuffleCapacity(kTuples)),
      out_p(ShuffleCapacity(kTuples));
  AlignedBuffer<uint32_t> scratch_k, scratch_p;
  std::vector<uint32_t> starts;
  if (variant == kSwwcPlanned) {
    scratch_k.Reset(ShuffleCapacity(kTuples));
    scratch_p.Reset(ShuffleCapacity(kTuples));
    starts.resize(fn.fanout + 1);
  }
  ShuffleBuffers bufs;
  SwwcBuffers wc_bufs;
  for (auto _ : state) {
    uint32_t sum = 0;
    for (uint32_t p = 0; p < fn.fanout; ++p) {
      offsets[p] = sum;
      sum += hist[p];
    }
    switch (variant) {
      case kScalarUnbuffered:
        ShuffleScalarUnbuffered(fn, cols.keys.data(), cols.pays.data(),
                                kTuples, offsets.data(), out_k.data(),
                                out_p.data());
        break;
      case kScalarBuffered:
        ShuffleScalarBuffered(fn, cols.keys.data(), cols.pays.data(),
                              kTuples, offsets.data(), out_k.data(),
                              out_p.data(), &bufs);
        break;
      case kVectorUnbuffered:
        ShuffleVectorUnbufferedAvx512(fn, cols.keys.data(), cols.pays.data(),
                                      kTuples, offsets.data(), out_k.data(),
                                      out_p.data());
        break;
      case kVectorBuffered:
        ShuffleVectorBufferedAvx512(fn, cols.keys.data(), cols.pays.data(),
                                    kTuples, offsets.data(), out_k.data(),
                                    out_p.data(), &bufs);
        break;
      case kVectorBufferedHashUnstable:
        ShuffleVectorBufferedUnstableAvx512(
            fn, cols.keys.data(), cols.pays.data(), kTuples, offsets.data(),
            out_k.data(), out_p.data(), &bufs);
        break;
      case kSwwcScalar:
        ShuffleSwwcScalar(fn, cols.keys.data(), cols.pays.data(), kTuples,
                          offsets.data(), out_k.data(), out_p.data(),
                          &wc_bufs);
        break;
      case kSwwcAvx512:
        ShuffleSwwcAvx512(fn, cols.keys.data(), cols.pays.data(), kTuples,
                          offsets.data(), out_k.data(), out_p.data(),
                          &wc_bufs);
        break;
      case kSwwcPlanned:
        // End-to-end planned partition (histograms included), single thread
        // to stay comparable with the kernel-only rows.
        MultiPassRadixPartition(cols.keys.data(), cols.pays.data(), kTuples,
                                bits, out_k.data(), out_p.data(),
                                scratch_k.data(), scratch_p.data(), BestIsa(),
                                1, PartitionBudget::Default(), starts.data());
        break;
    }
    benchmark::DoNotOptimize(out_k.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  static const char* kNames[] = {
      "scalar_unbuffered", "scalar_buffered",
      "vector_unbuffered", "vector_buffered",
      "vector_buffered_hash_unstable", "swwc_scalar",
      "swwc_avx512", "swwc_planned"};
  state.SetLabel(kNames[variant]);
}

BENCHMARK(BM_Shuffle)
    ->ArgsProduct({{kScalarUnbuffered, kScalarBuffered, kVectorUnbuffered,
                    kVectorBuffered, kVectorBufferedHashUnstable, kSwwcScalar,
                    kSwwcAvx512, kSwwcPlanned},
                   {3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
