// Fig. 13: out-of-cache radix shuffling throughput vs. fanout (2^3..2^13):
// scalar unbuffered, scalar buffered, vector unbuffered (Alg. 14), vector
// buffered (Alg. 15), and the unstable hash-partitioning variant.

#include <vector>

#include "bench/bench_common.h"
#include "partition/histogram.h"
#include "partition/shuffle.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 23;  // 64 MB of key+payload

enum Variant {
  kScalarUnbuffered,
  kScalarBuffered,
  kVectorUnbuffered,
  kVectorBuffered,
  kVectorBufferedHashUnstable,
};

void BM_Shuffle(benchmark::State& state) {
  const auto variant = static_cast<Variant>(state.range(0));
  const auto bits = static_cast<uint32_t>(state.range(1));
  if (variant >= kVectorUnbuffered && !RequireIsa(state, Isa::kAvx512)) {
    return;
  }
  const auto& cols = KeyPayColumns::Get(kTuples, 0, 0xFFFFFFFFu, 1);
  PartitionFn fn = variant == kVectorBufferedHashUnstable
                       ? PartitionFn::Hash(1u << bits)
                       : PartitionFn::Radix(bits, 32 - bits);
  std::vector<uint32_t> hist(fn.fanout), offsets(fn.fanout);
  HistogramScalar(fn, cols.keys.data(), kTuples, hist.data());
  AlignedBuffer<uint32_t> out_k(kTuples + 16), out_p(kTuples + 16);
  ShuffleBuffers bufs;
  for (auto _ : state) {
    uint32_t sum = 0;
    for (uint32_t p = 0; p < fn.fanout; ++p) {
      offsets[p] = sum;
      sum += hist[p];
    }
    switch (variant) {
      case kScalarUnbuffered:
        ShuffleScalarUnbuffered(fn, cols.keys.data(), cols.pays.data(),
                                kTuples, offsets.data(), out_k.data(),
                                out_p.data());
        break;
      case kScalarBuffered:
        ShuffleScalarBuffered(fn, cols.keys.data(), cols.pays.data(),
                              kTuples, offsets.data(), out_k.data(),
                              out_p.data(), &bufs);
        break;
      case kVectorUnbuffered:
        ShuffleVectorUnbufferedAvx512(fn, cols.keys.data(), cols.pays.data(),
                                      kTuples, offsets.data(), out_k.data(),
                                      out_p.data());
        break;
      case kVectorBuffered:
        ShuffleVectorBufferedAvx512(fn, cols.keys.data(), cols.pays.data(),
                                    kTuples, offsets.data(), out_k.data(),
                                    out_p.data(), &bufs);
        break;
      case kVectorBufferedHashUnstable:
        ShuffleVectorBufferedUnstableAvx512(
            fn, cols.keys.data(), cols.pays.data(), kTuples, offsets.data(),
            out_k.data(), out_p.data(), &bufs);
        break;
    }
    benchmark::DoNotOptimize(out_k.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  static const char* kNames[] = {"scalar_unbuffered", "scalar_buffered",
                                 "vector_unbuffered", "vector_buffered",
                                 "vector_buffered_hash_unstable"};
  state.SetLabel(kNames[variant]);
}

BENCHMARK(BM_Shuffle)
    ->ArgsProduct({{kScalarUnbuffered, kScalarBuffered, kVectorUnbuffered,
                    kVectorBuffered, kVectorBufferedHashUnstable},
                   {3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
