// Ablation (DESIGN.md): conflict-handling strategies.
//
// 1. Serialization offsets — the paper's Alg. 13 (iterative scatter +
//    gather-back) vs. the vpconflictd+vpopcntd instructions the paper
//    anticipates as "AVX 3" (§5.1 / §7.3) vs. the scalar reference,
//    measured over a stream of partition ids at several fanouts (lower
//    fanout = more intra-vector conflicts = more Alg. 13 iterations).
// 2. Hash-table build conflict detection — scattering unique lane ids vs.
//    the §5.1 unique-keys shortcut of scattering the keys themselves.

#include "bench/bench_common.h"
#include "core/fundamental.h"
#include "hash/linear_probing.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 21;

enum SerVariant { kScalarRef, kIterative, kVpconflict };

void BM_SerializeConflicts(benchmark::State& state) {
  const auto variant = static_cast<SerVariant>(state.range(0));
  const auto fanout = static_cast<uint32_t>(state.range(1));
  if (variant != kScalarRef && !RequireIsa(state, Isa::kAvx512)) return;
  AlignedBuffer<uint32_t> ids(kTuples + 16);
  FillUniform(ids.data(), kTuples, 1, 0, fanout - 1);
  AlignedBuffer<uint32_t> out(kTuples + 16);
  AlignedBuffer<uint32_t> scratch(fanout + 16);
  for (auto _ : state) {
    for (size_t i = 0; i + 16 <= kTuples; i += 16) {
      switch (variant) {
        case kScalarRef:
          fundamental::SerializeConflicts16(Isa::kScalar, out.data() + i,
                                            ids.data() + i);
          break;
        case kIterative:
          fundamental::SerializeConflictsIterative16(
              Isa::kAvx512, out.data() + i, ids.data() + i, scratch.data());
          break;
        case kVpconflict:
          fundamental::SerializeConflicts16(Isa::kAvx512, out.data() + i,
                                            ids.data() + i);
          break;
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  static const char* kNames[] = {"scalar", "alg13_scatter_gather",
                                 "vpconflictd"};
  state.SetLabel(kNames[variant]);
}

BENCHMARK(BM_SerializeConflicts)
    ->ArgsProduct({{kScalarRef, kIterative, kVpconflict}, {2, 16, 256, 4096}})
    ->Unit(benchmark::kMillisecond);

void BM_BuildConflictMode(benchmark::State& state) {
  const bool unique_shortcut = state.range(0) != 0;
  if (!RequireIsa(state, Isa::kAvx512)) return;
  const size_t n = size_t{1} << 16;
  AlignedBuffer<uint32_t> keys(n + 16), pays(n + 16);
  FillUniqueShuffled(keys.data(), n, 1);
  FillSequential(pays.data(), n, 0);
  LinearProbingTable table(n * 2);
  for (auto _ : state) {
    table.Clear();
    table.BuildAvx512(keys.data(), pays.data(), n, unique_shortcut);
    benchmark::DoNotOptimize(table.bucket_keys());
  }
  SetTuplesPerSecond(state, static_cast<double>(n));
  state.SetLabel(unique_shortcut ? "scatter_keys_directly"
                                 : "scatter_lane_ids");
}

BENCHMARK(BM_BuildConflictMode)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
