// Extension benchmark: end-to-end composed query through the push-based
// executor (src/exec/). The plan is TPC-H Q3 shaped — filter a 128K-row
// dimension R on its key range, hash-build, filter a 2M-row fact S on a
// value predicate, bloom-prefilter the foreign keys, probe, and group the
// join output by R's attribute with SUM/COUNT/MIN/MAX — the same pipeline
// every operator bench measures in isolation, now paying the real chunk
// hand-off, conversion, and breaker costs between them.
//
// Sweep: isa {scalar, avx2, avx512} x S selectivity {1%, 10%, 50%} x
// threads {1, 8}. Under --metrics (or the metrics-forced CI build) each
// row carries the executor's observability instruments — chunks_pushed and
// the per-operator phase timers (exec_scan_ns, exec_bloom_ns,
// exec_build_ns, exec_probe_ns, exec_partition_ns, exec_groupby_ns) —
// which scripts/check_bench_ranges.py gates structurally: the chunk grid
// has a known shape, and each phase's share of scan time must stay inside
// wide ratio bands (a silently skipped operator reports zero time and
// fails the gate).

#include <string>

#include "bench/bench_common.h"
#include "exec/chunk.h"
#include "exec/query.h"

namespace simddb::bench {
namespace {

constexpr size_t kRTuples = size_t{128} << 10;  // dimension: 128K rows
constexpr size_t kSTuples = size_t{2} << 20;    // fact: 2M rows
constexpr uint32_t kValMax = 999'999;

void BM_ExecQuery(benchmark::State& state) {
  const Isa isa = static_cast<Isa>(state.range(0));
  const uint32_t sel_pct = static_cast<uint32_t>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  if (!RequireIsa(state, isa)) return;

  // R keys must be unique for the PK-FK join: sequential 1..kRTuples.
  static AlignedBuffer<uint32_t>* r_keys = [] {
    auto* b = new AlignedBuffer<uint32_t>(kRTuples + 16);
    FillSequential(b->data(), kRTuples, 1);
    return b;
  }();
  static AlignedBuffer<uint32_t>* r_attrs = [] {
    auto* b = new AlignedBuffer<uint32_t>(kRTuples + 16);
    FillUniform(b->data(), kRTuples, 5, 1, 1024);
    return b;
  }();
  const auto& s = KeyPayColumns::Get(kSTuples, 1,
                                     static_cast<uint32_t>(kRTuples), 6);
  static AlignedBuffer<uint32_t>* s_vals = [] {
    auto* b = new AlignedBuffer<uint32_t>(kSTuples + 16);
    FillUniform(b->data(), kSTuples, 7, 0, kValMax);
    return b;
  }();

  exec::ScanJoinAggregatePlan plan;
  plan.r_keys = r_keys->data();
  plan.r_attrs = r_attrs->data();
  plan.n_r = kRTuples;
  plan.r_lo = 1;
  plan.r_hi = static_cast<uint32_t>((3 * kRTuples) / 4);  // keep 75% of R
  plan.s_fks = s.keys.data();
  plan.s_vals = s_vals->data();
  plan.n_s = kSTuples;
  plan.s_lo = 0;
  plan.s_hi = (uint64_t{kValMax} + 1) * sel_pct / 100 - 1;  // sel% of S
  plan.bloom_bits_per_key = 10;
  plan.max_groups_hint = 2048;

  exec::ExecConfig cfg;
  cfg.isa = isa;
  cfg.threads = threads;

  size_t groups = 0;
  for (auto _ : state) {
    exec::QueryResult res = exec::RunScanJoinAggregate(plan, cfg);
    groups = res.group_keys.size();
    benchmark::DoNotOptimize(res.sums.data());
  }
  // Throughput over the fact table: the fact scan dominates the input.
  SetTuplesPerSecond(state, static_cast<double>(kSTuples));
  state.SetLabel("query_q3 isa=" + std::string(IsaName(isa)) +
                 " sel=" + std::to_string(sel_pct) +
                 " threads=" + std::to_string(threads) +
                 " groups=" + std::to_string(groups));
}

// {isa, S selectivity %, threads}. Fixed iterations so the counter totals
// are comparable across variants; wall-clock since the work spans lanes.
BENCHMARK(BM_ExecQuery)
    ->ArgsProduct({{0, 1, 2}, {1, 10, 50}, {1, 8}})
    ->Iterations(10)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
