// Extension benchmark: end-to-end composed query through the push-based
// executor (src/exec/). The plan is TPC-H Q3 shaped — filter a 128K-row
// dimension R on its key range, hash-build, filter a 2M-row fact S on a
// value predicate, bloom-prefilter the foreign keys, probe, and group the
// join output by R's attribute with SUM/COUNT/MIN/MAX — the same pipeline
// every operator bench measures in isolation, now paying the real chunk
// hand-off, conversion, and breaker costs between them.
//
// Sweep: isa {scalar, avx2, avx512} x S selectivity {ramp, 1%, 10%, 50%} x
// threads {1, 8} x executor mode. Mode is the dispatch-tax axis:
//
//   0  dynamic   the virtual-Push Operator chain (PipelineMode::kDynamic);
//   1  fused     the template-fused pipeline (exec/fused.h). Each timed
//                fused iteration is paired with an untimed dynamic run of
//                the same plan (inside PauseTiming). The paired run's
//                registry deltas are excluded from the row's gated counters
//                (AccumulateExcludedSince) and its whole-query timer is
//                re-exported as `paired_dynamic_ns`, so the fused/dynamic
//                ratio gate needs no cross-row lookup and fused rows report
//                fused-only counters (exec_dynamic_ns stays 0);
//   2  hand      the serial hand-composed kernel sequence — no executor at
//                all, the lower bound the fused path chases. Registered at
//                threads = 1 only (the sequence has no parallel driver);
//   3  adaptive        the dynamic chain under IsaMode::kAdaptive — the
//                      dispatcher re-times {scalar, AVX2, AVX-512} x
//                      {compact, bitmap} on live chunks and switches
//                      mid-query (isa=adaptive in the label);
//   4  adaptive_fused  the fused path under IsaMode::kAdaptive — explore/
//                      exploit windows routed across the per-ISA
//                      FusedPipeline instantiations.
//
// Selectivity 0 is the phase-changing input: S values ramp linearly with
// row position, so under the fixed predicate the per-chunk qualifier
// density slides from 100% down to 0% across the table — the input no
// static ISA choice is right for, and the one the adaptive gate requires
// `adaptive_switches >= 1` on.
//
// Under --metrics (or the metrics-forced CI build) each row carries the
// executor's observability instruments — chunks_pushed, pipelines_fused /
// pipelines_dynamic, the phase timers (exec_scan_ns, exec_bloom_ns,
// exec_build_ns, exec_probe_ns, exec_partition_ns, exec_groupby_ns,
// exec_fused_ns, exec_dynamic_ns), and the adaptive instruments
// (adaptive_switches, explore_chunks, chosen_* histogram) — which
// check_bench_ranges.py gates structurally (dynamic rows), as the
// fused/paired-dynamic ratio (fused rows), and as the adaptive-vs-static
// cross-row comparison (adaptive rows).

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "agg/group_by.h"
#include "bench/bench_common.h"
#include "bloom/bloom_filter.h"
#include "compress/column.h"
#include "exec/chunk.h"
#include "exec/query.h"
#include "hash/linear_probing.h"
#include "scan/selection_scan.h"
#include "util/rng.h"

namespace simddb::bench {
namespace {

constexpr size_t kRTuples = size_t{128} << 10;  // dimension: 128K rows
constexpr size_t kSTuples = size_t{2} << 20;    // fact: 2M rows
constexpr uint32_t kValMax = 999'999;

enum ExecMode : int {
  kModeDynamic = 0,
  kModeFused = 1,
  kModeHand = 2,
  kModeAdaptive = 3,       // dynamic chain, IsaMode::kAdaptive
  kModeAdaptiveFused = 4,  // fused windows, IsaMode::kAdaptive
};

/// Selectivity axis sentinel: 0 selects the phase-changing ramp input.
constexpr uint32_t kSelRamp = 0;

/// The plan hand-composed from the operator kernels, serial: scan R, build,
/// scan S, bloom, probe, aggregate — the kernel sequence with zero executor
/// machinery between stages (mirrors HandComposed in tests/exec_test.cc).
size_t HandComposedQ3(const exec::ScanJoinAggregatePlan& p, Isa isa) {
  const ScanVariant v = exec::ScanVariantForIsa(isa);
  AlignedBuffer<uint32_t> rk(SelectionScanCapacity(p.n_r)),
      ra(SelectionScanCapacity(p.n_r));
  const size_t n_build = SelectionScan(v, p.r_keys, p.r_attrs, p.n_r, p.r_lo,
                                       p.r_hi, rk.data(), ra.data(),
                                       rk.size());
  size_t buckets = 16;
  while (buckets < 2 * (n_build + 1)) buckets <<= 1;
  LinearProbingTable table(buckets);
  table.Build(isa, rk.data(), ra.data(), n_build);
  BloomFilter filter =
      BloomFilter::ForItems(n_build, p.bloom_bits_per_key, p.bloom_k, 42);
  filter.Add(rk.data(), n_build);

  AlignedBuffer<uint32_t> sv(SelectionScanCapacity(p.n_s)),
      sf(SelectionScanCapacity(p.n_s));
  size_t n_sel = SelectionScan(v, p.s_vals, p.s_fks, p.n_s, p.s_lo, p.s_hi,
                               sv.data(), sf.data(), sv.size());
  AlignedBuffer<uint32_t> bf(n_sel + 16), bv(n_sel + 16);
  n_sel = filter.Probe(isa, sf.data(), sv.data(), n_sel, bf.data(), bv.data());
  AlignedBuffer<uint32_t> jk(n_sel + 16), jsp(n_sel + 16), jrp(n_sel + 16);
  const size_t n_join = table.Probe(isa, bf.data(), bv.data(), n_sel,
                                    jk.data(), jsp.data(), jrp.data());
  GroupByAggregator agg(p.max_groups_hint);
  agg.Accumulate(isa, jrp.data(), jsp.data(), n_join);
  return agg.num_groups();
}

void BM_ExecQuery(benchmark::State& state) {
  const Isa isa = static_cast<Isa>(state.range(0));
  const uint32_t sel_pct = static_cast<uint32_t>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  const int mode = static_cast<int>(state.range(3));
  if (!RequireIsa(state, isa)) return;

  // R keys must be unique for the PK-FK join: sequential 1..kRTuples.
  static AlignedBuffer<uint32_t>* r_keys = [] {
    auto* b = new AlignedBuffer<uint32_t>(kRTuples + 16);
    FillSequential(b->data(), kRTuples, 1);
    return b;
  }();
  static AlignedBuffer<uint32_t>* r_attrs = [] {
    auto* b = new AlignedBuffer<uint32_t>(kRTuples + 16);
    FillUniform(b->data(), kRTuples, 5, 1, 1024);
    return b;
  }();
  const auto& s = KeyPayColumns::Get(kSTuples, 1,
                                     static_cast<uint32_t>(kRTuples), 6);
  static AlignedBuffer<uint32_t>* s_vals = [] {
    auto* b = new AlignedBuffer<uint32_t>(kSTuples + 16);
    FillUniform(b->data(), kSTuples, 7, 0, kValMax);
    return b;
  }();
  // Phase-changing input: values ramp linearly with row position, so the
  // fixed `val <= kValMax/2` predicate below qualifies ~100% of early
  // chunks and ~0% of late ones — the per-chunk selectivity slides through
  // the scalar/vector crossover mid-query.
  static AlignedBuffer<uint32_t>* s_vals_ramp = [] {
    auto* b = new AlignedBuffer<uint32_t>(kSTuples + 16);
    for (size_t i = 0; i < kSTuples; ++i) {
      b->data()[i] =
          static_cast<uint32_t>(uint64_t{kValMax + 1} * i / kSTuples);
    }
    return b;
  }();

  exec::ScanJoinAggregatePlan plan;
  plan.r_keys = r_keys->data();
  plan.r_attrs = r_attrs->data();
  plan.n_r = kRTuples;
  plan.r_lo = 1;
  plan.r_hi = static_cast<uint32_t>((3 * kRTuples) / 4);  // keep 75% of R
  plan.s_fks = s.keys.data();
  plan.s_vals = sel_pct == kSelRamp ? s_vals_ramp->data() : s_vals->data();
  plan.n_s = kSTuples;
  plan.s_lo = 0;
  // sel% of S for the uniform inputs; the ramp keeps ~50% overall but
  // distributes it as a 100% -> 0% per-chunk density slide.
  plan.s_hi = sel_pct == kSelRamp
                  ? kValMax / 2
                  : static_cast<uint32_t>(
                        (uint64_t{kValMax} + 1) * sel_pct / 100 - 1);
  plan.bloom_bits_per_key = 10;
  plan.max_groups_hint = 2048;

  const bool adaptive = mode == kModeAdaptive || mode == kModeAdaptiveFused;
  exec::ExecConfig cfg;
  // Adaptive rows anchor cfg.isa at the widest supported backend (variant 0
  // of every schedule = the static choice); the dispatcher re-times the
  // rest on live chunks.
  cfg.isa = adaptive ? BestIsa() : isa;
  cfg.threads = threads;
  cfg.pipeline_mode = mode == kModeFused || mode == kModeAdaptiveFused
                          ? exec::PipelineMode::kFused
                          : exec::PipelineMode::kDynamic;
  cfg.isa_mode = adaptive ? exec::IsaMode::kAdaptive : exec::IsaMode::kStatic;

  size_t groups = 0;
  uint64_t paired_dynamic_ns = 0;
  for (auto _ : state) {
    if (mode == kModeHand) {
      groups = HandComposedQ3(plan, isa);
      continue;
    }
    exec::QueryResult res = exec::RunScanJoinAggregate(plan, cfg);
    groups = res.group_keys.size();
    benchmark::DoNotOptimize(res.sums.data());
    if (mode == kModeFused) {
      // Paired untimed dynamic run of the same plan. Its registry deltas
      // are excluded from this row's gated counters (fused rows must
      // report fused-only counters); the whole-query timer it produces is
      // re-exported under `paired_dynamic_ns` for the ratio gate.
      state.PauseTiming();
      const auto before = MetricsSnapshotNow();
      exec::ExecConfig dyn_cfg = cfg;
      dyn_cfg.pipeline_mode = exec::PipelineMode::kDynamic;
      exec::QueryResult dyn = exec::RunScanJoinAggregate(plan, dyn_cfg);
      benchmark::DoNotOptimize(dyn.sums.data());
      const auto excluded = AccumulateExcludedSince(before);
      const auto it = excluded.find("exec_dynamic_ns");
      if (it != excluded.end()) paired_dynamic_ns += it->second;
      state.ResumeTiming();
    }
  }
  // Throughput over the fact table: the fact scan dominates the input.
  SetTuplesPerSecond(state, static_cast<double>(kSTuples));
  if (mode == kModeFused && obs::MetricsEnabled()) {
    state.counters["paired_dynamic_ns"] =
        benchmark::Counter(static_cast<double>(paired_dynamic_ns));
  }
  const char* variant = mode == kModeHand            ? "query_q3_hand"
                        : mode == kModeFused         ? "query_q3_fused"
                        : mode == kModeAdaptive      ? "query_q3_adaptive"
                        : mode == kModeAdaptiveFused ? "query_q3_adaptive_fused"
                                                     : "query_q3_dynamic";
  state.SetLabel(std::string(variant) +
                 " isa=" + (adaptive ? "adaptive" : IsaName(isa)) +
                 " sel=" + std::to_string(sel_pct) +
                 " threads=" + std::to_string(threads) +
                 " groups=" + std::to_string(groups));
}

// {isa, S selectivity % (0 = ramp), threads, mode}. Fixed iterations so the
// counter totals are comparable across variants; wall-clock since the work
// spans lanes. The hand-composed mode is serial by construction, so it
// registers at threads = 1 only; the adaptive modes pick their own ISA, so
// they register once (isa arg 0, overridden to BestIsa inside).
//
// Registration order groups each (sel, threads) cell's static rows with the
// adaptive rows the baseline gate compares them against, so the pair is
// measured seconds — not minutes — apart. On a shared host the ambient load
// drifts by tens of percent across a full sweep, which used to dominate the
// adaptive-vs-best-static ratios; run order is the controllable half of
// that noise.
BENCHMARK(BM_ExecQuery)
    ->ArgsProduct({{0, 1, 2}, {0}, {1}, {kModeDynamic, kModeFused}})
    ->ArgsProduct({{0}, {0}, {1}, {kModeAdaptive, kModeAdaptiveFused}})
    ->ArgsProduct({{0, 1, 2}, {0}, {8}, {kModeDynamic, kModeFused}})
    ->ArgsProduct({{0}, {0}, {8}, {kModeAdaptive, kModeAdaptiveFused}})
    ->ArgsProduct({{0, 1, 2}, {1}, {1}, {kModeDynamic, kModeFused}})
    ->ArgsProduct({{0}, {1}, {1}, {kModeAdaptive, kModeAdaptiveFused}})
    ->ArgsProduct({{0, 1, 2}, {1}, {8}, {kModeDynamic, kModeFused}})
    ->ArgsProduct({{0}, {1}, {8}, {kModeAdaptive, kModeAdaptiveFused}})
    ->ArgsProduct({{0, 1, 2}, {10}, {1}, {kModeDynamic, kModeFused}})
    ->ArgsProduct({{0}, {10}, {1}, {kModeAdaptive, kModeAdaptiveFused}})
    ->ArgsProduct({{0, 1, 2}, {10}, {8}, {kModeDynamic, kModeFused}})
    ->ArgsProduct({{0}, {10}, {8}, {kModeAdaptive, kModeAdaptiveFused}})
    ->ArgsProduct({{0, 1, 2}, {50}, {1}, {kModeDynamic, kModeFused}})
    ->ArgsProduct({{0}, {50}, {1}, {kModeAdaptive, kModeAdaptiveFused}})
    ->ArgsProduct({{0, 1, 2}, {50}, {8}, {kModeDynamic, kModeFused}})
    ->ArgsProduct({{0}, {50}, {8}, {kModeAdaptive, kModeAdaptiveFused}})
    ->ArgsProduct({{0, 1, 2}, {1, 10, 50}, {1}, {kModeHand}})
    // 40 fixed iterations: on this shared host the ambient load arrives in
    // bursts comparable to a 10-iteration window, so the cross-row ratio
    // gates need each row to average over several bursts. Counter gates are
    // per-iteration or min-only, so the count is free to change.
    ->Iterations(40)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Compressed storage axis: the same Q3 plan over CompressColumn'd S base
// tables (scan-over-compressed, src/compress/) vs the raw columns, on the
// dynamic executor. Args {isa, sel code, threads, storage 0=raw/1=packed}.
//
// Sel codes reuse the BM_ExecQuery meanings (0 = ramp, 1 = 1% uniform) and
// add 77 = block-clustered: every 1024-row block of S draws both columns
// from a narrow 128-value window whose value base ramps across the domain —
// the layout FOR compression exists for. Clustered rows carry the footprint
// counters the >= 4x gate divides (compress_packed_bytes /
// compress_raw_bytes), and under the 1% predicate their zone maps skip
// ~99% of blocks, which is what makes the compressed-not-slower compare
// gate hold: the scan classifies most blocks from metadata alone and never
// touches their packed bytes, while the raw baseline streams all 16 MB.
// Ramp rows gate the skip protocol itself (blocks_skipped /
// blocks_all_pass / bytes_unpacked): the predicate keeps the first half of
// the value blocks entirely (decode-as-emit) and skips the second half.
constexpr uint32_t kSelClustered = 77;

void BM_ExecQueryCompressed(benchmark::State& state) {
  const Isa isa = static_cast<Isa>(state.range(0));
  const uint32_t sel_code = static_cast<uint32_t>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  const bool compressed = state.range(3) != 0;
  if (!RequireIsa(state, isa)) return;

  static AlignedBuffer<uint32_t>* r_keys = [] {
    auto* b = new AlignedBuffer<uint32_t>(kRTuples + 16);
    FillSequential(b->data(), kRTuples, 1);
    return b;
  }();
  static AlignedBuffer<uint32_t>* r_attrs = [] {
    auto* b = new AlignedBuffer<uint32_t>(kRTuples + 16);
    FillUniform(b->data(), kRTuples, 5, 1, 1024);
    return b;
  }();

  struct SColumns {
    AlignedBuffer<uint32_t> fks, vals;
    compress::CompressedColumn fks_c, vals_c;
  };
  static SColumns* s_uniform = [] {
    auto* s = new SColumns;
    s->fks.Reset(kSTuples + 16);
    s->vals.Reset(kSTuples + 16);
    FillUniform(s->fks.data(), kSTuples, 6, 1,
                static_cast<uint32_t>(kRTuples));
    FillUniform(s->vals.data(), kSTuples, 7, 0, kValMax);
    s->fks_c = compress::CompressColumn(s->fks.data(), kSTuples);
    s->vals_c = compress::CompressColumn(s->vals.data(), kSTuples);
    return s;
  }();
  static SColumns* s_ramp = [] {
    auto* s = new SColumns;
    s->fks.Reset(kSTuples + 16);
    s->vals.Reset(kSTuples + 16);
    FillUniform(s->fks.data(), kSTuples, 6, 1,
                static_cast<uint32_t>(kRTuples));
    for (size_t i = 0; i < kSTuples; ++i) {
      s->vals.data()[i] =
          static_cast<uint32_t>(uint64_t{kValMax + 1} * i / kSTuples);
    }
    s->fks_c = compress::CompressColumn(s->fks.data(), kSTuples);
    s->vals_c = compress::CompressColumn(s->vals.data(), kSTuples);
    return s;
  }();
  static SColumns* s_clustered = [] {
    auto* s = new SColumns;
    s->fks.Reset(kSTuples + 16);
    s->vals.Reset(kSTuples + 16);
    Pcg32 rng(8);
    const size_t n_blocks =
        (kSTuples + compress::kBlockTuples - 1) / compress::kBlockTuples;
    for (size_t i = 0; i < kSTuples; ++i) {
      const size_t block = i / compress::kBlockTuples;
      // FK locality: each block references a 128-key neighborhood of R.
      s->fks.data()[i] = 1 +
                         static_cast<uint32_t>((block * 677) %
                                               (kRTuples - 128)) +
                         rng.NextBounded(128);
      // Value locality: 128-wide window whose base ramps across the domain,
      // so per-block zone maps are tight and widths are 7 bits.
      s->vals.data()[i] =
          static_cast<uint32_t>(uint64_t{kValMax + 1 - 128} * block /
                                n_blocks) +
          rng.NextBounded(128);
    }
    s->fks_c = compress::CompressColumn(s->fks.data(), kSTuples);
    s->vals_c = compress::CompressColumn(s->vals.data(), kSTuples);
    return s;
  }();

  const SColumns& s = sel_code == kSelRamp        ? *s_ramp
                      : sel_code == kSelClustered ? *s_clustered
                                                  : *s_uniform;

  exec::ScanJoinAggregatePlan plan;
  plan.r_keys = r_keys->data();
  plan.r_attrs = r_attrs->data();
  plan.n_r = kRTuples;
  plan.r_lo = 1;
  plan.r_hi = static_cast<uint32_t>((3 * kRTuples) / 4);
  plan.s_fks = s.fks.data();
  plan.s_vals = s.vals.data();
  plan.n_s = kSTuples;
  plan.s_lo = 0;
  // The ramp keeps its ~50% predicate; clustered rows run the 1% predicate
  // (1% of the value domain ~= 1% of the blocks, the skip showcase).
  plan.s_hi = sel_code == kSelRamp
                  ? kValMax / 2
                  : static_cast<uint32_t>((uint64_t{kValMax} + 1) *
                                              (sel_code == kSelClustered
                                                   ? 1
                                                   : sel_code) /
                                              100 -
                                          1);
  plan.bloom_bits_per_key = 10;
  plan.max_groups_hint = 2048;
  if (compressed) {
    plan.s_fks_c = &s.fks_c;
    plan.s_vals_c = &s.vals_c;
  }

  exec::ExecConfig cfg;
  cfg.isa = isa;
  cfg.threads = threads;
  cfg.pipeline_mode = exec::PipelineMode::kDynamic;

  size_t groups = 0;
  for (auto _ : state) {
    exec::QueryResult res = exec::RunScanJoinAggregate(plan, cfg);
    groups = res.group_keys.size();
    benchmark::DoNotOptimize(res.sums.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kSTuples));
  if (compressed) {
    // Static storage properties, not per-iteration deltas: the footprint
    // gate divides them directly (S payload+meta over S raw bytes).
    state.counters["compress_packed_bytes"] = benchmark::Counter(
        static_cast<double>(s.fks_c.packed_bytes() + s.vals_c.packed_bytes()));
    state.counters["compress_raw_bytes"] = benchmark::Counter(
        static_cast<double>(s.fks_c.raw_bytes() + s.vals_c.raw_bytes()));
  }
  state.SetLabel(std::string(compressed ? "query_q3_compressed"
                                        : "query_q3_raw") +
                 " isa=" + IsaName(isa) +
                 " sel=" + std::to_string(sel_code) +
                 " threads=" + std::to_string(threads) +
                 " storage=" + (compressed ? "packed" : "raw") +
                 " groups=" + std::to_string(groups));
}

// {isa, sel code (0 = ramp, 1 = 1% uniform, 77 = clustered), threads,
// storage}. Raw/packed pairs register adjacently per cell so the
// compressed-vs-raw compare gates measure them seconds apart (same
// rationale as the adaptive pairing above).
BENCHMARK(BM_ExecQueryCompressed)
    ->ArgsProduct({{0, 2}, {0}, {1}, {0, 1}})
    ->ArgsProduct({{0, 2}, {0}, {8}, {0, 1}})
    ->ArgsProduct({{0, 2}, {1}, {1}, {0, 1}})
    ->ArgsProduct({{0, 2}, {1}, {8}, {0, 1}})
    ->ArgsProduct({{0, 2}, {77}, {1}, {0, 1}})
    ->ArgsProduct({{0, 2}, {77}, {8}, {0, 1}})
    ->Iterations(40)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
