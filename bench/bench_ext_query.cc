// Extension benchmark: end-to-end composed query through the push-based
// executor (src/exec/). The plan is TPC-H Q3 shaped — filter a 128K-row
// dimension R on its key range, hash-build, filter a 2M-row fact S on a
// value predicate, bloom-prefilter the foreign keys, probe, and group the
// join output by R's attribute with SUM/COUNT/MIN/MAX — the same pipeline
// every operator bench measures in isolation, now paying the real chunk
// hand-off, conversion, and breaker costs between them.
//
// Sweep: isa {scalar, avx2, avx512} x S selectivity {1%, 10%, 50%} x
// threads {1, 8} x executor mode. Mode is the dispatch-tax axis:
//
//   0  dynamic   the virtual-Push Operator chain (PipelineMode::kDynamic);
//   1  fused     the template-fused pipeline (exec/fused.h). Each timed
//                fused iteration is paired with an untimed dynamic run of
//                the same plan (inside PauseTiming), so every fused row
//                carries both exec_fused_ns and exec_dynamic_ns deltas and
//                scripts/check_bench_ranges.py can gate their same-row
//                ratio (fused <= 1.0x dynamic);
//   2  hand      the serial hand-composed kernel sequence — no executor at
//                all, the lower bound the fused path chases. Registered at
//                threads = 1 only (the sequence has no parallel driver).
//
// Under --metrics (or the metrics-forced CI build) each row carries the
// executor's observability instruments — chunks_pushed, pipelines_fused /
// pipelines_dynamic, and the phase timers (exec_scan_ns, exec_bloom_ns,
// exec_build_ns, exec_probe_ns, exec_partition_ns, exec_groupby_ns,
// exec_fused_ns, exec_dynamic_ns) — which check_bench_ranges.py gates
// structurally (dynamic rows) and as the fused/dynamic ratio (fused rows).

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "agg/group_by.h"
#include "bench/bench_common.h"
#include "bloom/bloom_filter.h"
#include "exec/chunk.h"
#include "exec/query.h"
#include "hash/linear_probing.h"
#include "scan/selection_scan.h"

namespace simddb::bench {
namespace {

constexpr size_t kRTuples = size_t{128} << 10;  // dimension: 128K rows
constexpr size_t kSTuples = size_t{2} << 20;    // fact: 2M rows
constexpr uint32_t kValMax = 999'999;

enum ExecMode : int { kModeDynamic = 0, kModeFused = 1, kModeHand = 2 };

/// The plan hand-composed from the operator kernels, serial: scan R, build,
/// scan S, bloom, probe, aggregate — the kernel sequence with zero executor
/// machinery between stages (mirrors HandComposed in tests/exec_test.cc).
size_t HandComposedQ3(const exec::ScanJoinAggregatePlan& p, Isa isa) {
  const ScanVariant v = exec::ScanVariantForIsa(isa);
  AlignedBuffer<uint32_t> rk(SelectionScanCapacity(p.n_r)),
      ra(SelectionScanCapacity(p.n_r));
  const size_t n_build = SelectionScan(v, p.r_keys, p.r_attrs, p.n_r, p.r_lo,
                                       p.r_hi, rk.data(), ra.data(),
                                       rk.size());
  size_t buckets = 16;
  while (buckets < 2 * (n_build + 1)) buckets <<= 1;
  LinearProbingTable table(buckets);
  table.Build(isa, rk.data(), ra.data(), n_build);
  BloomFilter filter =
      BloomFilter::ForItems(n_build, p.bloom_bits_per_key, p.bloom_k, 42);
  filter.Add(rk.data(), n_build);

  AlignedBuffer<uint32_t> sv(SelectionScanCapacity(p.n_s)),
      sf(SelectionScanCapacity(p.n_s));
  size_t n_sel = SelectionScan(v, p.s_vals, p.s_fks, p.n_s, p.s_lo, p.s_hi,
                               sv.data(), sf.data(), sv.size());
  AlignedBuffer<uint32_t> bf(n_sel + 16), bv(n_sel + 16);
  n_sel = filter.Probe(isa, sf.data(), sv.data(), n_sel, bf.data(), bv.data());
  AlignedBuffer<uint32_t> jk(n_sel + 16), jsp(n_sel + 16), jrp(n_sel + 16);
  const size_t n_join = table.Probe(isa, bf.data(), bv.data(), n_sel,
                                    jk.data(), jsp.data(), jrp.data());
  GroupByAggregator agg(p.max_groups_hint);
  agg.Accumulate(isa, jrp.data(), jsp.data(), n_join);
  return agg.num_groups();
}

void BM_ExecQuery(benchmark::State& state) {
  const Isa isa = static_cast<Isa>(state.range(0));
  const uint32_t sel_pct = static_cast<uint32_t>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  const int mode = static_cast<int>(state.range(3));
  if (!RequireIsa(state, isa)) return;

  // R keys must be unique for the PK-FK join: sequential 1..kRTuples.
  static AlignedBuffer<uint32_t>* r_keys = [] {
    auto* b = new AlignedBuffer<uint32_t>(kRTuples + 16);
    FillSequential(b->data(), kRTuples, 1);
    return b;
  }();
  static AlignedBuffer<uint32_t>* r_attrs = [] {
    auto* b = new AlignedBuffer<uint32_t>(kRTuples + 16);
    FillUniform(b->data(), kRTuples, 5, 1, 1024);
    return b;
  }();
  const auto& s = KeyPayColumns::Get(kSTuples, 1,
                                     static_cast<uint32_t>(kRTuples), 6);
  static AlignedBuffer<uint32_t>* s_vals = [] {
    auto* b = new AlignedBuffer<uint32_t>(kSTuples + 16);
    FillUniform(b->data(), kSTuples, 7, 0, kValMax);
    return b;
  }();

  exec::ScanJoinAggregatePlan plan;
  plan.r_keys = r_keys->data();
  plan.r_attrs = r_attrs->data();
  plan.n_r = kRTuples;
  plan.r_lo = 1;
  plan.r_hi = static_cast<uint32_t>((3 * kRTuples) / 4);  // keep 75% of R
  plan.s_fks = s.keys.data();
  plan.s_vals = s_vals->data();
  plan.n_s = kSTuples;
  plan.s_lo = 0;
  plan.s_hi = (uint64_t{kValMax} + 1) * sel_pct / 100 - 1;  // sel% of S
  plan.bloom_bits_per_key = 10;
  plan.max_groups_hint = 2048;

  exec::ExecConfig cfg;
  cfg.isa = isa;
  cfg.threads = threads;
  cfg.pipeline_mode = mode == kModeFused ? exec::PipelineMode::kFused
                                         : exec::PipelineMode::kDynamic;

  size_t groups = 0;
  for (auto _ : state) {
    if (mode == kModeHand) {
      groups = HandComposedQ3(plan, isa);
      continue;
    }
    exec::QueryResult res = exec::RunScanJoinAggregate(plan, cfg);
    groups = res.group_keys.size();
    benchmark::DoNotOptimize(res.sums.data());
    if (mode == kModeFused) {
      // Paired untimed dynamic run: lands exec_dynamic_ns (and the dynamic
      // path's counters) in this same JSONL row, so the fused/dynamic
      // ratio gate needs no cross-row lookup.
      state.PauseTiming();
      exec::ExecConfig dyn_cfg = cfg;
      dyn_cfg.pipeline_mode = exec::PipelineMode::kDynamic;
      exec::QueryResult dyn = exec::RunScanJoinAggregate(plan, dyn_cfg);
      benchmark::DoNotOptimize(dyn.sums.data());
      state.ResumeTiming();
    }
  }
  // Throughput over the fact table: the fact scan dominates the input.
  SetTuplesPerSecond(state, static_cast<double>(kSTuples));
  const char* variant = mode == kModeHand    ? "query_q3_hand"
                        : mode == kModeFused ? "query_q3_fused"
                                             : "query_q3_dynamic";
  state.SetLabel(std::string(variant) + " isa=" + IsaName(isa) +
                 " sel=" + std::to_string(sel_pct) +
                 " threads=" + std::to_string(threads) +
                 " groups=" + std::to_string(groups));
}

// {isa, S selectivity %, threads, mode}. Fixed iterations so the counter
// totals are comparable across variants; wall-clock since the work spans
// lanes. The hand-composed mode is serial by construction, so it registers
// at threads = 1 only.
BENCHMARK(BM_ExecQuery)
    ->ArgsProduct({{0, 1, 2}, {1, 10, 50}, {1, 8}, {kModeDynamic, kModeFused}})
    ->ArgsProduct({{0, 1, 2}, {1, 10, 50}, {1}, {kModeHand}})
    ->Iterations(10)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
