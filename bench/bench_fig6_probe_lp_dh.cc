// Fig. 6: probe throughput of linear-probing and double-hashing tables —
// scalar vs. horizontal (bucketized [30]) vs. vertical (the paper's design)
// — as the table grows from L1-resident (4 KB) to RAM-resident (64 MB).
// Tables 50% full, unique build keys, ~all probes match.

#include <memory>

#include "bench/bench_common.h"
#include "hash/bucketized.h"
#include "hash/double_hashing.h"
#include "hash/linear_probing.h"

namespace simddb::bench {
namespace {

constexpr size_t kProbes = size_t{1} << 22;

enum Variant {
  kLpScalar,
  kLpHorizontal,
  kLpVertical,
  kLpVerticalAvx2,
  kDhScalar,
  kDhHorizontal,
  kDhVertical,
};

struct Setup {
  AlignedBuffer<uint32_t> b_keys, b_pays;
  AlignedBuffer<uint32_t> p_keys, p_pays;
  std::unique_ptr<LinearProbingTable> lp;
  std::unique_ptr<DoubleHashingTable> dh;
  std::unique_ptr<BucketizedTable> lp_bucket;
  std::unique_ptr<BucketizedTable> dh_bucket;

  explicit Setup(size_t table_bytes) {
    // Split layout: 8 bytes per bucket (key + payload arrays).
    size_t buckets = table_bytes / 8;
    size_t n_build = buckets / 2;  // 50% load factor
    b_keys.Reset(n_build + 16);
    b_pays.Reset(n_build + 16);
    FillUniqueShuffled(b_keys.data(), n_build, 1);
    FillSequential(b_pays.data(), n_build, 0);
    p_keys.Reset(kProbes + 16);
    p_pays.Reset(kProbes + 16);
    FillProbeKeys(p_keys.data(), kProbes, b_keys.data(), n_build, 1.0, 2);
    FillSequential(p_pays.data(), kProbes, 0);
    lp = std::make_unique<LinearProbingTable>(buckets);
    lp->BuildScalar(b_keys.data(), b_pays.data(), n_build);
    dh = std::make_unique<DoubleHashingTable>(buckets);
    dh->BuildScalar(b_keys.data(), b_pays.data(), n_build);
    lp_bucket = std::make_unique<BucketizedTable>(buckets,
                                                  BucketScheme::kLinear);
    lp_bucket->BuildScalar(b_keys.data(), b_pays.data(), n_build);
    dh_bucket = std::make_unique<BucketizedTable>(buckets,
                                                  BucketScheme::kDouble);
    dh_bucket->BuildScalar(b_keys.data(), b_pays.data(), n_build);
  }

  static Setup& Get(size_t table_bytes) {
    static auto* cache = new std::map<size_t, std::unique_ptr<Setup>>();
    auto it = cache->find(table_bytes);
    if (it == cache->end()) {
      it = cache->emplace(table_bytes, std::make_unique<Setup>(table_bytes))
               .first;
    }
    return *it->second;
  }
};

void BM_ProbeLpDh(benchmark::State& state) {
  const auto variant = static_cast<Variant>(state.range(0));
  const size_t table_bytes = static_cast<size_t>(state.range(1)) * 1024;
  bool needs512 = variant == kLpHorizontal || variant == kLpVertical ||
                  variant == kDhHorizontal || variant == kDhVertical;
  if (needs512 && !RequireIsa(state, Isa::kAvx512)) return;
  if (variant == kLpVerticalAvx2 && !RequireIsa(state, Isa::kAvx2)) return;
  Setup& s = Setup::Get(table_bytes);
  AlignedBuffer<uint32_t> ok(kProbes + 16), os(kProbes + 16),
      orp(kProbes + 16);
  size_t matches = 0;
  for (auto _ : state) {
    switch (variant) {
      case kLpScalar:
        matches = s.lp->ProbeScalar(s.p_keys.data(), s.p_pays.data(),
                                    kProbes, ok.data(), os.data(),
                                    orp.data());
        break;
      case kLpHorizontal:
        matches = s.lp_bucket->ProbeHorizontalAvx512(
            s.p_keys.data(), s.p_pays.data(), kProbes, ok.data(), os.data(),
            orp.data());
        break;
      case kLpVertical:
        matches = s.lp->ProbeAvx512(s.p_keys.data(), s.p_pays.data(),
                                    kProbes, ok.data(), os.data(),
                                    orp.data());
        break;
      case kLpVerticalAvx2:
        matches = s.lp->ProbeAvx2(s.p_keys.data(), s.p_pays.data(), kProbes,
                                  ok.data(), os.data(), orp.data());
        break;
      case kDhScalar:
        matches = s.dh->ProbeScalar(s.p_keys.data(), s.p_pays.data(),
                                    kProbes, ok.data(), os.data(),
                                    orp.data());
        break;
      case kDhHorizontal:
        matches = s.dh_bucket->ProbeHorizontalAvx512(
            s.p_keys.data(), s.p_pays.data(), kProbes, ok.data(), os.data(),
            orp.data());
        break;
      case kDhVertical:
        matches = s.dh->ProbeAvx512(s.p_keys.data(), s.p_pays.data(),
                                    kProbes, ok.data(), os.data(),
                                    orp.data());
        break;
    }
    benchmark::DoNotOptimize(matches);
  }
  SetTuplesPerSecond(state, static_cast<double>(kProbes));
  static const char* kNames[] = {"LP_scalar",       "LP_horizontal",
                                 "LP_vertical",     "LP_vertical_avx2",
                                 "DH_scalar",       "DH_horizontal",
                                 "DH_vertical"};
  state.SetLabel(kNames[variant]);
}

BENCHMARK(BM_ProbeLpDh)
    ->ArgsProduct({{kLpScalar, kLpHorizontal, kLpVertical, kLpVerticalAvx2,
                    kDhScalar, kDhHorizontal, kDhVertical},
                   // Table size in KB: 4 KB (L1) ... 64 MB (RAM).
                   {4, 16, 64, 256, 1024, 4096, 16384, 65536}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
