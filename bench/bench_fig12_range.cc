// Fig. 12: range partition function throughput vs. fanout — scalar
// branching / branchless binary search, vectorized binary search (Alg. 12),
// and the horizontal SIMD range-index tree [26] at its natural fanouts
// (9^d with 256-bit nodes, 17^d with 512-bit nodes).

#include <memory>

#include "bench/bench_common.h"
#include "partition/range.h"

namespace simddb::bench {
namespace {

constexpr size_t kTuples = size_t{1} << 22;

enum Variant {
  kScalarBranching,
  kScalarBranchless,
  kVectorBinarySearch,
  kVectorBinarySearchAvx2,
  kTreeIndex8,   // 256-bit nodes, fanout 9^levels
  kTreeIndex16,  // 512-bit nodes, fanout 17^levels
};

void BM_RangeFunction(benchmark::State& state) {
  const auto variant = static_cast<Variant>(state.range(0));
  const auto fanout = static_cast<uint32_t>(state.range(1));
  if ((variant == kVectorBinarySearch || variant == kTreeIndex16) &&
      !RequireIsa(state, Isa::kAvx512)) {
    return;
  }
  if ((variant == kVectorBinarySearchAvx2 || variant == kTreeIndex8) &&
      !RequireIsa(state, Isa::kAvx2)) {
    return;
  }
  const auto& cols = KeyPayColumns::Get(kTuples, 0, 0xFFFFFFFFu, 1);
  auto splitters = MakeSplitters(fanout, 0xFFFFFFF0u);
  RangeFunction fn(splitters);
  std::unique_ptr<RangeIndex> index;
  if (variant == kTreeIndex8) index = std::make_unique<RangeIndex>(splitters, 8);
  if (variant == kTreeIndex16) {
    index = std::make_unique<RangeIndex>(splitters, 16);
    if (!IsaSupported(Isa::kAvx512)) {
      state.SkipWithError("avx512 required");
      return;
    }
  }
  AlignedBuffer<uint32_t> out(kTuples + 16);
  for (auto _ : state) {
    switch (variant) {
      case kScalarBranching:
        fn.ScalarBranching(cols.keys.data(), kTuples, out.data());
        break;
      case kScalarBranchless:
        fn.ScalarBranchless(cols.keys.data(), kTuples, out.data());
        break;
      case kVectorBinarySearch:
        fn.VectorAvx512(cols.keys.data(), kTuples, out.data());
        break;
      case kVectorBinarySearchAvx2:
        fn.VectorAvx2(cols.keys.data(), kTuples, out.data());
        break;
      case kTreeIndex8:
      case kTreeIndex16:
        index->LookupAvx512(cols.keys.data(), kTuples, out.data());
        break;
    }
    benchmark::DoNotOptimize(out.data());
  }
  SetTuplesPerSecond(state, static_cast<double>(kTuples));
  static const char* kNames[] = {"scalar_branching", "scalar_branchless",
                                 "vector_binsearch", "vector_binsearch_avx2",
                                 "tree_index_9ary",  "tree_index_17ary"};
  state.SetLabel(kNames[variant]);
}

// Generic fanouts for the search variants; the tree indexes run at their
// natural fanouts (the paper's 9, 9^2, 9^3, 9^4 and 17, 17^2, 17^3).
BENCHMARK(BM_RangeFunction)
    ->ArgsProduct({{kScalarBranching, kScalarBranchless, kVectorBinarySearch,
                    kVectorBinarySearchAvx2},
                   {8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}});
BENCHMARK(BM_RangeFunction)
    ->ArgsProduct({{kTreeIndex8}, {9, 81, 729, 6561}});
BENCHMARK(BM_RangeFunction)
    ->ArgsProduct({{kTreeIndex16}, {17, 289, 4913}});

}  // namespace
}  // namespace simddb::bench

SIMDDB_BENCH_MAIN();
