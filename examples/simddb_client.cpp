// simddb_client: CLI REPL over the wire protocol (net/client.h).
//
//   ./simddb_client --unix /tmp/simddb.sock
//   ./simddb_client --host 127.0.0.1 --port 7461
//   printf 'PING\nQUERY build=R probe=S s=[0,999]\nQUIT\n' |
//       ./simddb_client --unix /tmp/simddb.sock
//
// Interactive mode (stdin is a tty) prints a `simddb> ` prompt; scripted
// mode reads commands line by line and prints every response frame
// verbatim, so transcripts diff cleanly. `-c '<line>'` runs one command
// and exits. Exit status 0 when every command got a non-ERR response,
// 1 on any ERR or transport failure.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "net/client.h"
#include "net/protocol.h"

int main(int argc, char** argv) {
  using namespace simddb;

  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = -1;
  std::string one_shot;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      unix_path = next("--unix");
    } else if (arg == "--host") {
      host = next("--host");
    } else if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else if (arg == "-c") {
      one_shot = next("-c");
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (unix_path.empty() && port < 0) {
    std::fprintf(stderr, "need --unix <path> or --port <n>\n");
    return 2;
  }

  net::Client client;
  std::string error;
  const bool connected = unix_path.empty()
                             ? client.ConnectTcp(host, port, &error)
                             : client.ConnectUnix(unix_path, &error);
  if (!connected) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  const bool interactive = one_shot.empty() && isatty(STDIN_FILENO);
  bool saw_err = false;

  // One command -> print response frames until the exchange's final frame.
  auto run = [&](const std::string& line) -> bool /* keep going */ {
    if (line.empty()) return true;
    if (!client.SendLine(line)) {
      std::fprintf(stderr, "send failed (server gone?)\n");
      saw_err = true;
      return false;
    }
    const bool is_quit = line.substr(0, 4) == "QUIT";
    std::string frame;
    for (;;) {
      if (!client.ReadLine(&frame)) {
        if (!is_quit) {
          std::fprintf(stderr, "connection closed\n");
          saw_err = true;
        }
        return false;
      }
      std::printf("%s\n", frame.c_str());
      switch (net::ClassifyFrame(frame)) {
        case net::FrameKind::kErr:
          saw_err = true;
          return !is_quit;
        case net::FrameKind::kOk:
        case net::FrameKind::kPong:
          return !is_quit;
        case net::FrameKind::kBye:
          return false;
        default:
          break;  // ROW / TABLE / STAT frames keep streaming
      }
    }
  };

  if (!one_shot.empty()) {
    run(one_shot);
    client.Close();
    return saw_err ? 1 : 0;
  }

  std::string line;
  for (;;) {
    if (interactive) {
      std::printf("simddb> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!run(line)) break;
  }
  client.Close();
  return saw_err ? 1 : 0;
}
