// A motivating OLAP micro-query (the workload class the paper's intro
// targets), executed twice — once all-scalar, once all-vector — to show the
// end-to-end effect of vectorization on a full pipeline:
//
//   SELECT COUNT(*), SUM(s.quantity)
//   FROM lineitem s JOIN promoted_parts r ON s.part = r.part
//   WHERE s.quantity BETWEEN :lo AND :hi
//
// with a Bloom-filter semi-join pre-pass (§6) that eliminates most probe
// tuples before the join, since only ~4% of parts are promoted.
//
//   $ ./analytics_query [million_lineitems=16]

#include <cstdio>
#include <cstdlib>
#include <inttypes.h>

#include "bloom/bloom_filter.h"
#include "core/isa.h"
#include "join/hash_join.h"
#include "scan/selection_scan.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include "util/timer.h"

using namespace simddb;

namespace {

struct PipelineResult {
  size_t after_scan = 0;
  size_t after_bloom = 0;
  size_t matches = 0;
  uint64_t sum_quantity = 0;
  double scan_ms = 0, bloom_ms = 0, join_ms = 0;
};

PipelineResult RunPipeline(bool vectorized, const uint32_t* part,
                           const uint32_t* quantity, size_t n,
                           const uint32_t* promo_part,
                           const uint32_t* promo_discount, size_t n_promo) {
  PipelineResult res;
  Isa isa = vectorized ? BestIsa() : Isa::kScalar;

  // 1. Selection scan on quantity, carrying the part fk as payload.
  Timer t;
  AlignedBuffer<uint32_t> q1(SelectionScanCapacity(n)),
      p1(SelectionScanCapacity(n));
  ScanVariant scan = vectorized && IsaSupported(Isa::kAvx512)
                         ? ScanVariant::kVectorStoreIndirect
                         : ScanVariant::kScalarBranchless;
  res.after_scan = SelectionScan(scan, quantity, part, n, 20, 70, q1.data(),
                                 p1.data(), q1.size());
  res.scan_ms = t.Millis();

  // 2. Bloom semi-join: drop tuples whose part is certainly not promoted.
  t.Reset();
  BloomFilter filter = BloomFilter::ForItems(n_promo, 10, 5);
  filter.Add(promo_part, n_promo);
  AlignedBuffer<uint32_t> p2(res.after_scan + 16), q2(res.after_scan + 16);
  res.after_bloom = filter.Probe(isa, p1.data(), q1.data(), res.after_scan,
                                 p2.data(), q2.data());
  res.bloom_ms = t.Millis();

  // 3. Hash join against the promoted parts.
  t.Reset();
  JoinRelation r{promo_part, promo_discount, n_promo};
  JoinRelation s{p2.data(), q2.data(), res.after_bloom};
  JoinConfig cfg;
  cfg.isa = isa;
  AlignedBuffer<uint32_t> jk(res.after_bloom + 16),
      jr(res.after_bloom + 16), js(res.after_bloom + 16);
  res.matches = HashJoinMaxPartition(r, s, cfg, jk.data(), jr.data(),
                                     js.data(), nullptr);
  res.join_ms = t.Millis();
  for (size_t i = 0; i < res.matches; ++i) res.sum_quantity += js[i];
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = (argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16) *
                   1'000'000ull;
  const size_t n_parts = 1u << 20;
  const size_t n_promo = n_parts / 25;  // ~4% of parts promoted

  AlignedBuffer<uint32_t> part(n + 16), quantity(n + 16);
  FillUniform(part.data(), n, 1, 1, static_cast<uint32_t>(n_parts));
  FillUniform(quantity.data(), n, 2, 1, 100);
  AlignedBuffer<uint32_t> promo_part(n_promo + 16),
      promo_discount(n_promo + 16);
  // Promoted parts: a random subset of the part domain (unique keys).
  AlignedBuffer<uint32_t> all_parts(n_parts + 16);
  FillUniqueShuffled(all_parts.data(), n_parts, 7, 1);
  for (size_t i = 0; i < n_promo; ++i) promo_part[i] = all_parts[i];
  FillUniform(promo_discount.data(), n_promo, 8, 1, 50);

  std::printf("analytics_query: %zu lineitems, %zu parts, %zu promoted\n", n,
              n_parts, n_promo);
  for (bool vec : {false, true}) {
    PipelineResult r =
        RunPipeline(vec, part.data(), quantity.data(), n, promo_part.data(),
                    promo_discount.data(), n_promo);
    std::printf(
        "%-7s scan %8.2f ms (-> %zu)  bloom %8.2f ms (-> %zu)  "
        "join %8.2f ms (-> %zu)  total %8.2f ms  SUM(q)=%" PRIu64 "\n",
        vec ? "vector" : "scalar", r.scan_ms, r.after_scan, r.bloom_ms,
        r.after_bloom, r.join_ms, r.matches,
        r.scan_ms + r.bloom_ms + r.join_ms, r.sum_quantity);
  }
  return 0;
}
