// ORDER BY over a wide table (§10.5.3 / Fig. 18 scenario): sort a fact
// table of one 32-bit key column plus payload columns of mixed widths with
// the multi-column LSB radixsort, scalar vs vectorized.
//
//   $ ./sort_pipeline [million_rows=8]

#include <cstdio>
#include <cstdlib>

#include "core/isa.h"
#include "sort/radix_sort.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include "util/timer.h"

using namespace simddb;

int main(int argc, char** argv) {
  const size_t n = (argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8) *
                   1'000'000ull;
  std::printf("sort_pipeline: ORDER BY key over %zu rows "
              "(key u32 + payloads u8, u16, u32, u64)\n", n);

  for (Isa isa : {Isa::kScalar, BestIsa()}) {
    if (!IsaSupported(isa)) continue;
    AlignedBuffer<uint32_t> key(n + 16), key_scratch(n + 16);
    AlignedBuffer<uint8_t> flag(n + 64), flag_s(n + 64);
    AlignedBuffer<uint16_t> qty(n + 32), qty_s(n + 32);
    AlignedBuffer<uint32_t> price(n + 16), price_s(n + 16);
    AlignedBuffer<uint64_t> rowid(n + 16), rowid_s(n + 16);
    FillUniform(key.data(), n, 42, 0, 0xFFFFFFFFu);
    for (size_t i = 0; i < n; ++i) {
      flag[i] = static_cast<uint8_t>(i & 3);
      qty[i] = static_cast<uint16_t>(i * 7);
      price[i] = static_cast<uint32_t>(i * 13);
      rowid[i] = i;
    }
    SortColumn cols[4] = {{flag.data(), flag_s.data(), 1},
                          {qty.data(), qty_s.data(), 2},
                          {price.data(), price_s.data(), 4},
                          {rowid.data(), rowid_s.data(), 8}};
    RadixSortConfig cfg;
    cfg.isa = isa;
    Timer t;
    RadixSortMultiColumn(key.data(), key_scratch.data(), n, cols, 4, cfg);
    double ms = t.Millis();

    size_t violations = 0;
    for (size_t i = 1; i < n; ++i) violations += key[i - 1] > key[i];
    std::printf("  %-7s %9.2f ms  (%.1f M rows/s, sorted: %s)\n",
                IsaName(isa), ms, n / ms / 1e3,
                violations == 0 ? "yes" : "NO!");
  }
  return 0;
}
