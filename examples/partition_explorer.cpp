// Partitioning explorer: splits one dataset with the three partition
// function families of §7 (radix, hash, range) and reports throughput and
// partition balance — the decision the paper's sorting/join sections build
// on (radix/hash functions are cheap; range needs the SIMD tree to keep
// up, but enables ordered partitions).
//
//   $ ./partition_explorer [million_keys=16] [fanout=256]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/isa.h"
#include "partition/histogram.h"
#include "partition/partition_fn.h"
#include "partition/range.h"
#include "partition/shuffle.h"
#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/data_gen.h"
#include "util/timer.h"

using namespace simddb;

namespace {

void ReportBalance(const char* label, const std::vector<uint32_t>& hist,
                   size_t n, double ms) {
  uint32_t mx = *std::max_element(hist.begin(), hist.end());
  uint32_t mn = *std::min_element(hist.begin(), hist.end());
  double ideal = static_cast<double>(n) / hist.size();
  std::printf(
      "  %-28s %8.2f ms (%6.1f M keys/s)   largest %.2fx ideal, smallest "
      "%.2fx\n",
      label, ms, n / ms / 1e3, mx / ideal, mn / ideal);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = (argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16) *
                   1'000'000ull;
  const uint32_t fanout =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 256;
  const bool vec = IsaSupported(Isa::kAvx512);
  std::printf("partition_explorer: %zu keys into %u partitions (%s)\n", n,
              fanout, vec ? "vectorized" : "scalar");

  AlignedBuffer<uint32_t> keys(n + 16);
  FillUniform(keys.data(), n, 9, 0, 0xFFFFFFFFu);
  std::vector<uint32_t> hist(fanout);
  HistogramWorkspace ws;

  // Radix on the top bits (uniform keys -> balanced).
  {
    PartitionFn fn = PartitionFn::Radix(Log2Floor(fanout),
                                        32 - Log2Floor(fanout));
    Timer t;
    if (vec) {
      HistogramReplicatedAvx512(fn, keys.data(), n, hist.data(), &ws);
    } else {
      HistogramScalar(fn, keys.data(), n, hist.data());
    }
    ReportBalance("radix histogram", hist, n, t.Millis());
  }
  // Multiplicative hash.
  {
    PartitionFn fn = PartitionFn::Hash(fanout);
    Timer t;
    if (vec) {
      HistogramReplicatedAvx512(fn, keys.data(), n, hist.data(), &ws);
    } else {
      HistogramScalar(fn, keys.data(), n, hist.data());
    }
    ReportBalance("hash histogram", hist, n, t.Millis());
  }
  // Range with equi-width splitters, via vector binary search and the
  // horizontal SIMD range index.
  {
    auto splitters = MakeSplitters(fanout, 0xFFFFFFFFu);
    RangeFunction fn(splitters);
    AlignedBuffer<uint32_t> parts(n + 16);
    Timer t;
    if (vec) {
      fn.VectorAvx512(keys.data(), n, parts.data());
    } else {
      fn.ScalarBranchless(keys.data(), n, parts.data());
    }
    double fn_ms = t.Millis();
    std::fill(hist.begin(), hist.end(), 0);
    for (size_t i = 0; i < n; ++i) ++hist[parts[i]];
    ReportBalance("range fn (binary search)", hist, n, fn_ms);

    RangeIndex index(splitters, 16);
    t.Reset();
    if (vec) {
      index.LookupAvx512(keys.data(), n, parts.data());
    } else {
      index.LookupScalar(keys.data(), n, parts.data());
    }
    ReportBalance("range fn (SIMD tree)", hist, n, t.Millis());
  }
  // And an actual shuffle with the fastest function, to see data movement.
  {
    PartitionFn fn = PartitionFn::Hash(fanout);
    if (vec) {
      HistogramReplicatedAvx512(fn, keys.data(), n, hist.data(), &ws);
    } else {
      HistogramScalar(fn, keys.data(), n, hist.data());
    }
    std::vector<uint32_t> offsets(fanout);
    uint32_t sum = 0;
    for (uint32_t p = 0; p < fanout; ++p) {
      offsets[p] = sum;
      sum += hist[p];
    }
    AlignedBuffer<uint32_t> pays(n + 16), out_k(n + 16), out_p(n + 16);
    FillSequential(pays.data(), n, 0);
    ShuffleBuffers bufs;
    Timer t;
    if (vec) {
      ShuffleVectorBufferedAvx512(fn, keys.data(), pays.data(), n,
                                  offsets.data(), out_k.data(), out_p.data(),
                                  &bufs);
    } else {
      ShuffleScalarBuffered(fn, keys.data(), pays.data(), n, offsets.data(),
                            out_k.data(), out_p.data(), &bufs);
    }
    std::printf("  %-28s %8.2f ms (%6.1f M tuples/s)\n",
                "buffered shuffle (k+p)", t.Millis(), n / t.Millis() / 1e3);
  }
  return 0;
}
