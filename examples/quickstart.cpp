// Quickstart: the simddb public API in one file.
//
// Builds a tiny "orders" fact table and a "customers" dimension table,
// filters orders by a price range with a vectorized selection scan, then
// joins the survivors against customers with the max-partition hash join.
//
//   $ ./quickstart

#include <cstdio>
#include <inttypes.h>

#include "core/isa.h"
#include "join/hash_join.h"
#include "scan/selection_scan.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include "util/timer.h"

using namespace simddb;

int main() {
  const size_t n_customers = 1u << 16;
  const size_t n_orders = 1u << 20;
  std::printf("simddb quickstart — best ISA on this host: %s\n",
              IsaName(BestIsa()));

  // Customers: unique keys 1..n, payload = customer segment id.
  AlignedBuffer<uint32_t> cust_key(n_customers + 16);
  AlignedBuffer<uint32_t> cust_segment(n_customers + 16);
  FillUniqueShuffled(cust_key.data(), n_customers, /*seed=*/1);
  FillUniform(cust_segment.data(), n_customers, 2, 0, 4);

  // Orders: customer foreign key + price column.
  AlignedBuffer<uint32_t> order_cust(n_orders + 16);
  AlignedBuffer<uint32_t> order_price(n_orders + 16);
  FillUniform(order_cust.data(), n_orders, 3, 1,
              static_cast<uint32_t>(n_customers));
  FillUniform(order_price.data(), n_orders, 4, 0, 99'999);

  // SELECT ... WHERE price BETWEEN 10000 AND 19999 — a vectorized selection
  // scan keyed on the price column carries the customer fk as payload.
  Timer t;
  AlignedBuffer<uint32_t> sel_price(SelectionScanCapacity(n_orders));
  AlignedBuffer<uint32_t> sel_cust(SelectionScanCapacity(n_orders));
  ScanVariant scan = ScanVariantSupported(ScanVariant::kVectorStoreIndirect)
                         ? ScanVariant::kVectorStoreIndirect
                         : ScanVariant::kScalarBranchless;
  size_t n_sel =
      SelectionScan(scan, order_price.data(), order_cust.data(), n_orders,
                    10'000, 19'999, sel_price.data(), sel_cust.data(),
                    sel_price.size());
  std::printf("selection scan (%s): kept %zu of %zu orders in %.2f ms\n",
              ScanVariantName(scan), n_sel, n_orders, t.Millis());

  // JOIN customers ON order.cust = customer.key (key is unique in R).
  t.Reset();
  JoinRelation r{cust_key.data(), cust_segment.data(), n_customers};
  JoinRelation s{sel_cust.data(), sel_price.data(), n_sel};
  JoinConfig cfg;
  cfg.isa = BestIsa();
  AlignedBuffer<uint32_t> out_key(n_sel + 16), out_segment(n_sel + 16),
      out_price(n_sel + 16);
  JoinTimings jt;
  size_t matches = HashJoinMaxPartition(r, s, cfg, out_key.data(),
                                        out_segment.data(), out_price.data(),
                                        &jt);
  std::printf(
      "max-partition join: %zu matches in %.2f ms "
      "(partition %.2f, build %.2f, probe %.2f)\n",
      matches, t.Millis(), jt.partition_s * 1e3, jt.build_s * 1e3,
      jt.probe_s * 1e3);

  // A downstream aggregate, just to use the join output: revenue by segment.
  uint64_t revenue[5] = {0};
  for (size_t i = 0; i < matches; ++i) revenue[out_segment[i]] += out_price[i];
  for (int seg = 0; seg < 5; ++seg) {
    std::printf("  segment %d: revenue %" PRIu64 "\n", seg, revenue[seg]);
  }
  return 0;
}
