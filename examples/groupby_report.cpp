// GROUP BY report: the canonical aggregation query
//
//   SELECT store, COUNT(*), SUM(amount), MIN(amount), MAX(amount)
//   FROM sales GROUP BY store
//
// run with the hash group-by aggregator (vectorized vs scalar), then the
// result ordered by store id with the radixsort — a small end-to-end
// pipeline over two simddb operators.
//
//   $ ./groupby_report [million_rows=16] [stores=1024]

#include <cstdio>
#include <cstdlib>
#include <inttypes.h>

#include "agg/group_by.h"
#include "core/isa.h"
#include "sort/radix_sort.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"
#include "util/timer.h"

using namespace simddb;

int main(int argc, char** argv) {
  const size_t n = (argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16) *
                   1'000'000ull;
  const size_t stores =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1024;
  std::printf("groupby_report: %zu sales rows, %zu stores\n", n, stores);

  AlignedBuffer<uint32_t> store(n + 16), amount(n + 16);
  FillWithRepeats(store.data(), n, stores, 1, 1);
  FillUniform(amount.data(), n, 2, 1, 10'000);

  for (Isa isa : {Isa::kScalar, BestIsa()}) {
    if (!IsaSupported(isa)) continue;
    GroupByAggregator agg(stores + 16);
    Timer t;
    agg.Accumulate(isa, store.data(), amount.data(), n);
    double agg_ms = t.Millis();
    size_t g = agg.num_groups();

    AlignedBuffer<uint32_t> keys(g + 16), counts(g + 16), mins(g + 16),
        maxs(g + 16);
    AlignedBuffer<uint64_t> sums(g + 16);
    t.Reset();
    agg.Extract(isa, keys.data(), sums.data(), counts.data(), mins.data(),
                maxs.data());
    // ORDER BY store: sort group keys carrying their row position, then
    // emit in order.
    AlignedBuffer<uint32_t> order(g + 16), sk(g + 16), sp(g + 16);
    FillSequential(order.data(), g, 0);
    RadixSortConfig cfg;
    cfg.isa = isa;
    RadixSortPairs(keys.data(), order.data(), sk.data(), sp.data(), g, cfg);
    double finish_ms = t.Millis();

    std::printf("  %-7s aggregate %8.2f ms (%.1f M rows/s), extract+sort "
                "%6.2f ms, %zu groups\n",
                IsaName(isa), agg_ms, n / agg_ms / 1e3, finish_ms, g);
    // Show the first three groups of the report.
    for (size_t i = 0; i < g && i < 3; ++i) {
      size_t r = order[i];
      std::printf("    store %-6u count %-8u sum %-12" PRIu64
                  " min %-6u max %u\n",
                  keys[i], counts[r], sums[r], mins[r], maxs[r]);
    }
  }
  return 0;
}
