// simddb_server: the network serving front-end as a standalone process.
//
// Loads a generated demo catalog (R(pk, attr) with unique sequential keys,
// S(fk, val) with clustered sequential values — the shape the serving
// benches use), starts the poll()-based socket server (src/net/), and
// serves the wire protocol until SIGTERM/SIGINT or a client-issued
// SHUTDOWN drains it.
//
//   ./simddb_server --unix /tmp/simddb.sock
//   ./simddb_server --port 7461 --threads 8 --max-inflight 4 --admission reject
//
// Flags:
//   --unix <path>        Unix-domain listener (default /tmp/simddb.sock
//                        when no --port is given)
//   --port <n>           TCP listener on 127.0.0.1 (0 = ephemeral; the
//                        bound port is printed)
//   --threads <n>        executor threads per query (default 1)
//   --handlers <n>       handler pool size (default 4)
//   --max-inflight <n>   admission bound (default unbounded)
//   --admission <p>      block | reject (default block)
//   --rows-r <n>         demo build-table rows (default 64K)
//   --rows-s <n>         demo probe-table rows (default 1M)
//   --compress           register compressed twins too (storage=packed)
//   --metrics            enable the obs registry (STATS then reports it)

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/server.h"
#include "obs/metrics.h"
#include "server/catalog.h"
#include "util/aligned_buffer.h"
#include "util/data_gen.h"

namespace {

simddb::net::Server* g_server = nullptr;

void OnSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simddb;

  std::string unix_path;
  int port = -1;
  int threads = 1;
  int handlers = 4;
  int max_inflight = 0;
  bool reject = false;
  bool compress = false;
  bool metrics = false;
  size_t rows_r = size_t{64} << 10;
  size_t rows_s = size_t{1} << 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      unix_path = next("--unix");
    } else if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else if (arg == "--threads") {
      threads = std::atoi(next("--threads"));
    } else if (arg == "--handlers") {
      handlers = std::atoi(next("--handlers"));
    } else if (arg == "--max-inflight") {
      max_inflight = std::atoi(next("--max-inflight"));
    } else if (arg == "--admission") {
      const std::string p = next("--admission");
      if (p == "reject") {
        reject = true;
      } else if (p != "block") {
        std::fprintf(stderr, "--admission must be block or reject\n");
        return 2;
      }
    } else if (arg == "--rows-r") {
      rows_r = static_cast<size_t>(std::atoll(next("--rows-r")));
    } else if (arg == "--rows-s") {
      rows_s = static_cast<size_t>(std::atoll(next("--rows-s")));
    } else if (arg == "--compress") {
      compress = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (unix_path.empty() && port < 0) unix_path = "/tmp/simddb.sock";
  if (metrics) obs::EnableMetrics(true);

  // Demo catalog: R(pk, attr) with unique keys 1..rows_r, S(fk, val) with
  // uniform foreign keys and sequential (clustered) values, so
  // `s=[lo,hi]` windows map to contiguous chunk bands.
  server::Catalog catalog;
  {
    AlignedBuffer<uint32_t> r_keys(rows_r + 16), r_attrs(rows_r + 16);
    FillSequential(r_keys.data(), rows_r, 1);
    FillUniform(r_attrs.data(), rows_r, 5, 1, 1024);
    AlignedBuffer<uint32_t> s_fks(rows_s + 16), s_vals(rows_s + 16);
    FillUniform(s_fks.data(), rows_s, 6, 1, static_cast<uint32_t>(rows_r));
    FillSequential(s_vals.data(), rows_s, 0);
    server::TableOptions topts;
    topts.compress = compress;
    catalog.RegisterTable("R", r_keys.data(), r_attrs.data(), rows_r, topts);
    catalog.RegisterTable("S", s_fks.data(), s_vals.data(), rows_s, topts);
  }

  net::ServerOptions opts;
  opts.unix_path = unix_path;
  opts.tcp_port = port;
  opts.handler_threads = handlers;
  opts.exec.threads = threads;
  opts.scheduler.max_inflight = max_inflight;
  opts.scheduler.policy = reject ? server::AdmissionPolicy::kReject
                                 : server::AdmissionPolicy::kBlock;

  net::Server server(&catalog, opts);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "start failed: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  signal(SIGTERM, OnSignal);
  signal(SIGINT, OnSignal);

  if (!unix_path.empty()) {
    std::printf("listening on unix %s\n", unix_path.c_str());
  }
  if (port >= 0) {
    std::printf("listening on tcp 127.0.0.1:%d\n", server.tcp_port());
  }
  std::printf("tables: R rows=%zu, S rows=%zu%s\n", rows_r, rows_s,
              compress ? " (compressed twins)" : "");
  std::fflush(stdout);

  server.Wait();
  const net::ServerStats stats = server.stats();
  std::printf(
      "drained: %llu connections, %llu queries ok, %llu rejected, "
      "%llu parse errors\n",
      static_cast<unsigned long long>(stats.connections_opened),
      static_cast<unsigned long long>(stats.queries_ok),
      static_cast<unsigned long long>(stats.queries_rejected),
      static_cast<unsigned long long>(stats.parse_errors));
  return 0;
}
