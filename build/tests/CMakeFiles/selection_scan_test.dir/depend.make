# Empty dependencies file for selection_scan_test.
# This may be replaced when dependencies are built.
