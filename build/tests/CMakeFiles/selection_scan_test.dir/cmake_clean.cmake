file(REMOVE_RECURSE
  "CMakeFiles/selection_scan_test.dir/selection_scan_test.cc.o"
  "CMakeFiles/selection_scan_test.dir/selection_scan_test.cc.o.d"
  "selection_scan_test"
  "selection_scan_test.pdb"
  "selection_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
