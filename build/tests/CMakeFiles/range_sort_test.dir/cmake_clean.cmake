file(REMOVE_RECURSE
  "CMakeFiles/range_sort_test.dir/range_sort_test.cc.o"
  "CMakeFiles/range_sort_test.dir/range_sort_test.cc.o.d"
  "range_sort_test"
  "range_sort_test.pdb"
  "range_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
