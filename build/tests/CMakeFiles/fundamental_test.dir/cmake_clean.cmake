file(REMOVE_RECURSE
  "CMakeFiles/fundamental_test.dir/fundamental_test.cc.o"
  "CMakeFiles/fundamental_test.dir/fundamental_test.cc.o.d"
  "fundamental_test"
  "fundamental_test.pdb"
  "fundamental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fundamental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
