# Empty dependencies file for fundamental_test.
# This may be replaced when dependencies are built.
