# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/fundamental_test[1]_include.cmake")
include("/root/repo/build/tests/selection_scan_test[1]_include.cmake")
include("/root/repo/build/tests/hash_table_test[1]_include.cmake")
include("/root/repo/build/tests/bloom_filter_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/sort_test[1]_include.cmake")
include("/root/repo/build/tests/hash_join_test[1]_include.cmake")
include("/root/repo/build/tests/group_by_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_partition_test[1]_include.cmake")
include("/root/repo/build/tests/sort_merge_join_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/range_sort_test[1]_include.cmake")
