# Empty dependencies file for bench_fig10_bloom.
# This may be replaced when dependencies are built.
