file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_key_repeats.dir/bench_fig9_key_repeats.cc.o"
  "CMakeFiles/bench_fig9_key_repeats.dir/bench_fig9_key_repeats.cc.o.d"
  "bench_fig9_key_repeats"
  "bench_fig9_key_repeats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_key_repeats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
