# Empty compiler generated dependencies file for bench_fig9_key_repeats.
# This may be replaced when dependencies are built.
