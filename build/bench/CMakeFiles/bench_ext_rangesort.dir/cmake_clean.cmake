file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rangesort.dir/bench_ext_rangesort.cc.o"
  "CMakeFiles/bench_ext_rangesort.dir/bench_ext_rangesort.cc.o.d"
  "bench_ext_rangesort"
  "bench_ext_rangesort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rangesort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
