# Empty compiler generated dependencies file for bench_ext_rangesort.
# This may be replaced when dependencies are built.
