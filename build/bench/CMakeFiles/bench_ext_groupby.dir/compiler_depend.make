# Empty compiler generated dependencies file for bench_ext_groupby.
# This may be replaced when dependencies are built.
