file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_groupby.dir/bench_ext_groupby.cc.o"
  "CMakeFiles/bench_ext_groupby.dir/bench_ext_groupby.cc.o.d"
  "bench_ext_groupby"
  "bench_ext_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
