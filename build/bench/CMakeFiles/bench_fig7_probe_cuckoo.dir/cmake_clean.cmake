file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_probe_cuckoo.dir/bench_fig7_probe_cuckoo.cc.o"
  "CMakeFiles/bench_fig7_probe_cuckoo.dir/bench_fig7_probe_cuckoo.cc.o.d"
  "bench_fig7_probe_cuckoo"
  "bench_fig7_probe_cuckoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_probe_cuckoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
