# Empty dependencies file for bench_fig7_probe_cuckoo.
# This may be replaced when dependencies are built.
