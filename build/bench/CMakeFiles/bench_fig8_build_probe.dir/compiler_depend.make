# Empty compiler generated dependencies file for bench_fig8_build_probe.
# This may be replaced when dependencies are built.
