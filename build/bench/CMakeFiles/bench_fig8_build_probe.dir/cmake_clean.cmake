file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_build_probe.dir/bench_fig8_build_probe.cc.o"
  "CMakeFiles/bench_fig8_build_probe.dir/bench_fig8_build_probe.cc.o.d"
  "bench_fig8_build_probe"
  "bench_fig8_build_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_build_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
