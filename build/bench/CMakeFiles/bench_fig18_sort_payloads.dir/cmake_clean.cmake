file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_sort_payloads.dir/bench_fig18_sort_payloads.cc.o"
  "CMakeFiles/bench_fig18_sort_payloads.dir/bench_fig18_sort_payloads.cc.o.d"
  "bench_fig18_sort_payloads"
  "bench_fig18_sort_payloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_sort_payloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
