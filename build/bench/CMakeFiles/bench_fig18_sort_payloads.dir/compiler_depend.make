# Empty compiler generated dependencies file for bench_fig18_sort_payloads.
# This may be replaced when dependencies are built.
