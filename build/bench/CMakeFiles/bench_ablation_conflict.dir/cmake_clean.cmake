file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conflict.dir/bench_ablation_conflict.cc.o"
  "CMakeFiles/bench_ablation_conflict.dir/bench_ablation_conflict.cc.o.d"
  "bench_ablation_conflict"
  "bench_ablation_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
