file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_radixsort.dir/bench_fig14_radixsort.cc.o"
  "CMakeFiles/bench_fig14_radixsort.dir/bench_fig14_radixsort.cc.o.d"
  "bench_fig14_radixsort"
  "bench_fig14_radixsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_radixsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
