file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_probe_lp_dh.dir/bench_fig6_probe_lp_dh.cc.o"
  "CMakeFiles/bench_fig6_probe_lp_dh.dir/bench_fig6_probe_lp_dh.cc.o.d"
  "bench_fig6_probe_lp_dh"
  "bench_fig6_probe_lp_dh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_probe_lp_dh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
