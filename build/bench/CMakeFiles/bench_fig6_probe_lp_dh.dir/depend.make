# Empty dependencies file for bench_fig6_probe_lp_dh.
# This may be replaced when dependencies are built.
