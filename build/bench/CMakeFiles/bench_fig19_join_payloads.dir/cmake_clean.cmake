file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_join_payloads.dir/bench_fig19_join_payloads.cc.o"
  "CMakeFiles/bench_fig19_join_payloads.dir/bench_fig19_join_payloads.cc.o.d"
  "bench_fig19_join_payloads"
  "bench_fig19_join_payloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_join_payloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
