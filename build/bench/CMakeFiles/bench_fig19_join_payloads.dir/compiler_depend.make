# Empty compiler generated dependencies file for bench_fig19_join_payloads.
# This may be replaced when dependencies are built.
