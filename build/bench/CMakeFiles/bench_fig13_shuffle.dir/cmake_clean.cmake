file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_shuffle.dir/bench_fig13_shuffle.cc.o"
  "CMakeFiles/bench_fig13_shuffle.dir/bench_fig13_shuffle.cc.o.d"
  "bench_fig13_shuffle"
  "bench_fig13_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
