# Empty compiler generated dependencies file for bench_fig17_power_proxy.
# This may be replaced when dependencies are built.
