# Empty dependencies file for bench_fig15_join_variants.
# This may be replaced when dependencies are built.
