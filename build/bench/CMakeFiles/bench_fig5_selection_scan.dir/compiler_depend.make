# Empty compiler generated dependencies file for bench_fig5_selection_scan.
# This may be replaced when dependencies are built.
