# Empty dependencies file for simddb.
# This may be replaced when dependencies are built.
