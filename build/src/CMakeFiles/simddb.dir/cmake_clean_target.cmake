file(REMOVE_RECURSE
  "libsimddb.a"
)
