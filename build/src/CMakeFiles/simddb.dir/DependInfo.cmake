
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/group_by.cc" "src/CMakeFiles/simddb.dir/agg/group_by.cc.o" "gcc" "src/CMakeFiles/simddb.dir/agg/group_by.cc.o.d"
  "/root/repo/src/agg/group_by_avx512.cc" "src/CMakeFiles/simddb.dir/agg/group_by_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/agg/group_by_avx512.cc.o.d"
  "/root/repo/src/bloom/bloom_filter.cc" "src/CMakeFiles/simddb.dir/bloom/bloom_filter.cc.o" "gcc" "src/CMakeFiles/simddb.dir/bloom/bloom_filter.cc.o.d"
  "/root/repo/src/bloom/bloom_filter_avx2.cc" "src/CMakeFiles/simddb.dir/bloom/bloom_filter_avx2.cc.o" "gcc" "src/CMakeFiles/simddb.dir/bloom/bloom_filter_avx2.cc.o.d"
  "/root/repo/src/bloom/bloom_filter_avx512.cc" "src/CMakeFiles/simddb.dir/bloom/bloom_filter_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/bloom/bloom_filter_avx512.cc.o.d"
  "/root/repo/src/core/fundamental.cc" "src/CMakeFiles/simddb.dir/core/fundamental.cc.o" "gcc" "src/CMakeFiles/simddb.dir/core/fundamental.cc.o.d"
  "/root/repo/src/core/fundamental_avx2.cc" "src/CMakeFiles/simddb.dir/core/fundamental_avx2.cc.o" "gcc" "src/CMakeFiles/simddb.dir/core/fundamental_avx2.cc.o.d"
  "/root/repo/src/core/fundamental_avx512.cc" "src/CMakeFiles/simddb.dir/core/fundamental_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/core/fundamental_avx512.cc.o.d"
  "/root/repo/src/core/isa.cc" "src/CMakeFiles/simddb.dir/core/isa.cc.o" "gcc" "src/CMakeFiles/simddb.dir/core/isa.cc.o.d"
  "/root/repo/src/hash/bucketized.cc" "src/CMakeFiles/simddb.dir/hash/bucketized.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/bucketized.cc.o.d"
  "/root/repo/src/hash/bucketized_avx512.cc" "src/CMakeFiles/simddb.dir/hash/bucketized_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/bucketized_avx512.cc.o.d"
  "/root/repo/src/hash/cuckoo.cc" "src/CMakeFiles/simddb.dir/hash/cuckoo.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/cuckoo.cc.o.d"
  "/root/repo/src/hash/cuckoo_avx2.cc" "src/CMakeFiles/simddb.dir/hash/cuckoo_avx2.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/cuckoo_avx2.cc.o.d"
  "/root/repo/src/hash/cuckoo_avx512.cc" "src/CMakeFiles/simddb.dir/hash/cuckoo_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/cuckoo_avx512.cc.o.d"
  "/root/repo/src/hash/double_hashing.cc" "src/CMakeFiles/simddb.dir/hash/double_hashing.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/double_hashing.cc.o.d"
  "/root/repo/src/hash/double_hashing_avx2.cc" "src/CMakeFiles/simddb.dir/hash/double_hashing_avx2.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/double_hashing_avx2.cc.o.d"
  "/root/repo/src/hash/double_hashing_avx512.cc" "src/CMakeFiles/simddb.dir/hash/double_hashing_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/double_hashing_avx512.cc.o.d"
  "/root/repo/src/hash/linear_probing.cc" "src/CMakeFiles/simddb.dir/hash/linear_probing.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/linear_probing.cc.o.d"
  "/root/repo/src/hash/linear_probing_avx2.cc" "src/CMakeFiles/simddb.dir/hash/linear_probing_avx2.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/linear_probing_avx2.cc.o.d"
  "/root/repo/src/hash/linear_probing_avx512.cc" "src/CMakeFiles/simddb.dir/hash/linear_probing_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/hash/linear_probing_avx512.cc.o.d"
  "/root/repo/src/join/hash_join.cc" "src/CMakeFiles/simddb.dir/join/hash_join.cc.o" "gcc" "src/CMakeFiles/simddb.dir/join/hash_join.cc.o.d"
  "/root/repo/src/join/hash_join_avx512.cc" "src/CMakeFiles/simddb.dir/join/hash_join_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/join/hash_join_avx512.cc.o.d"
  "/root/repo/src/join/sort_merge_join.cc" "src/CMakeFiles/simddb.dir/join/sort_merge_join.cc.o" "gcc" "src/CMakeFiles/simddb.dir/join/sort_merge_join.cc.o.d"
  "/root/repo/src/partition/histogram.cc" "src/CMakeFiles/simddb.dir/partition/histogram.cc.o" "gcc" "src/CMakeFiles/simddb.dir/partition/histogram.cc.o.d"
  "/root/repo/src/partition/histogram_avx512.cc" "src/CMakeFiles/simddb.dir/partition/histogram_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/partition/histogram_avx512.cc.o.d"
  "/root/repo/src/partition/parallel_partition.cc" "src/CMakeFiles/simddb.dir/partition/parallel_partition.cc.o" "gcc" "src/CMakeFiles/simddb.dir/partition/parallel_partition.cc.o.d"
  "/root/repo/src/partition/range.cc" "src/CMakeFiles/simddb.dir/partition/range.cc.o" "gcc" "src/CMakeFiles/simddb.dir/partition/range.cc.o.d"
  "/root/repo/src/partition/range_avx512.cc" "src/CMakeFiles/simddb.dir/partition/range_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/partition/range_avx512.cc.o.d"
  "/root/repo/src/partition/shuffle.cc" "src/CMakeFiles/simddb.dir/partition/shuffle.cc.o" "gcc" "src/CMakeFiles/simddb.dir/partition/shuffle.cc.o.d"
  "/root/repo/src/partition/shuffle_avx512.cc" "src/CMakeFiles/simddb.dir/partition/shuffle_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/partition/shuffle_avx512.cc.o.d"
  "/root/repo/src/scan/selection_scan.cc" "src/CMakeFiles/simddb.dir/scan/selection_scan.cc.o" "gcc" "src/CMakeFiles/simddb.dir/scan/selection_scan.cc.o.d"
  "/root/repo/src/scan/selection_scan_avx2.cc" "src/CMakeFiles/simddb.dir/scan/selection_scan_avx2.cc.o" "gcc" "src/CMakeFiles/simddb.dir/scan/selection_scan_avx2.cc.o.d"
  "/root/repo/src/scan/selection_scan_avx512.cc" "src/CMakeFiles/simddb.dir/scan/selection_scan_avx512.cc.o" "gcc" "src/CMakeFiles/simddb.dir/scan/selection_scan_avx512.cc.o.d"
  "/root/repo/src/sort/radix_sort.cc" "src/CMakeFiles/simddb.dir/sort/radix_sort.cc.o" "gcc" "src/CMakeFiles/simddb.dir/sort/radix_sort.cc.o.d"
  "/root/repo/src/sort/range_sort.cc" "src/CMakeFiles/simddb.dir/sort/range_sort.cc.o" "gcc" "src/CMakeFiles/simddb.dir/sort/range_sort.cc.o.d"
  "/root/repo/src/util/cpu_info.cc" "src/CMakeFiles/simddb.dir/util/cpu_info.cc.o" "gcc" "src/CMakeFiles/simddb.dir/util/cpu_info.cc.o.d"
  "/root/repo/src/util/data_gen.cc" "src/CMakeFiles/simddb.dir/util/data_gen.cc.o" "gcc" "src/CMakeFiles/simddb.dir/util/data_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
