file(REMOVE_RECURSE
  "CMakeFiles/sort_pipeline.dir/sort_pipeline.cpp.o"
  "CMakeFiles/sort_pipeline.dir/sort_pipeline.cpp.o.d"
  "sort_pipeline"
  "sort_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
