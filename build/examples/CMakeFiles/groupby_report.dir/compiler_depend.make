# Empty compiler generated dependencies file for groupby_report.
# This may be replaced when dependencies are built.
