file(REMOVE_RECURSE
  "CMakeFiles/groupby_report.dir/groupby_report.cpp.o"
  "CMakeFiles/groupby_report.dir/groupby_report.cpp.o.d"
  "groupby_report"
  "groupby_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupby_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
